//! The paper's case study III (§6.3.3): two prefetch-friendly and two
//! prefetch-unfriendly applications sharing a 4-core CMP's memory system.
//! Shows how PADC protects the friendly applications' useful prefetches
//! while dropping the unfriendly ones' useless prefetches.
//!
//! ```text
//! cargo run --release --example multicore_mix
//! ```

use padc::core::SchedulingPolicy;
use padc::sim::{metrics, SimConfig, System};
use padc::workloads::Workload;

fn main() {
    let workload = Workload::from_names(&[
        "omnetpp_06",    // prefetch-unfriendly
        "libquantum_06", // prefetch-friendly
        "galgel_00",     // prefetch-unfriendly
        "GemsFDTD_06",   // prefetch-friendly
    ]);

    // IPC of each application running alone (paper methodology: single
    // core, demand-first).
    let alone: Vec<f64> = workload
        .benchmarks
        .iter()
        .map(|b| {
            let mut cfg = SimConfig::single_core(SchedulingPolicy::DemandFirst);
            cfg.max_instructions = 200_000;
            System::new(cfg, vec![b.clone()]).run().per_core[0].ipc()
        })
        .collect();

    for policy in [
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::DemandPrefetchEqual,
        SchedulingPolicy::Padc,
        SchedulingPolicy::PadcRank,
    ] {
        let mut cfg = SimConfig::new(4, policy);
        cfg.max_instructions = 200_000;
        let r = System::new(cfg, workload.benchmarks.clone()).run();
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        println!("{}:", policy.label());
        for (c, speedup) in r
            .per_core
            .iter()
            .zip(metrics::individual_speedups(&ipcs, &alone))
        {
            println!(
                "  {:<14} IS={:.2} acc={:>3.0}% sent={:<5} dropped={:<5} traffic={}",
                c.benchmark,
                speedup,
                c.acc() * 100.0,
                c.prefetches_sent,
                c.prefetches_dropped,
                c.traffic.total(),
            );
        }
        println!(
            "  WS={:.3} HS={:.3} UF={:.2} total-traffic={}",
            metrics::weighted_speedup(&ipcs, &alone),
            metrics::harmonic_speedup(&ipcs, &alone),
            metrics::unfairness(&ipcs, &alone),
            r.traffic().total(),
        );
        println!();
    }
}
