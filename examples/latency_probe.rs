//! Measures effective DRAM load-to-use latency with a pure pointer chase
//! (MLP = 1): every cycle not spent on the chase's fixed compute is memory
//! stall, so `cycles/hop − work` approximates the loaded memory latency.
//! Compares scheduling policies under prefetcher interference from a
//! co-running streaming core.
//!
//! ```text
//! cargo run --release --example latency_probe
//! ```

use padc::core::SchedulingPolicy;
use padc::cpu::TraceSource;
use padc::sim::{SimConfig, System};
use padc::workloads::{profiles, ChaseConfig, PointerChase, TraceGen};

fn main() {
    let hops = 4_000u64;
    let work = 4u32;
    let instructions = hops * (1 + work as u64);
    println!("pointer chase: {hops} hops, {work} compute ops per hop\n");

    for policy in [
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::DemandPrefetchEqual,
        SchedulingPolicy::Padc,
    ] {
        // Core 0: the chase. Core 1: an aggressive streaming app whose
        // prefetches compete for the channel.
        let mut cfg = SimConfig::new(2, policy);
        cfg.max_instructions = instructions;
        let chase: Box<dyn TraceSource> = Box::new(PointerChase::new(ChaseConfig {
            nodes: 1 << 16,
            work_per_hop: work,
            seed: 7,
        }));
        let stream: Box<dyn TraceSource> = Box::new(TraceGen::new(&profiles::libquantum(), 1, 7));
        let mut sys = System::with_traces(
            cfg,
            vec![chase, stream],
            vec!["pointer-chase".into(), "libquantum_06".into()],
        );
        let r = sys.run();
        let c = &r.per_core[0];
        let cycles_per_hop = c.cycles as f64 / hops as f64;
        let effective_latency = cycles_per_hop - (1.0 + work as f64) / 4.0;
        println!(
            "{:<20} cycles/hop={:>7.1}  ~load-to-use latency={:>7.1} cycles  (chase IPC={:.3})",
            policy.label(),
            cycles_per_hop,
            effective_latency,
            c.ipc(),
        );
    }
}
