# shellcheck shell=bash
# Shared gate-script reporting: per-section wall-clock timings plus a
# pass/fail table appended to $GITHUB_STEP_SUMMARY when it is set (the
# table is always mirrored to stderr), so a gate failure is readable from
# the workflow summary page without downloading logs.
#
# Usage, from a `set -euo pipefail` gate script:
#
#     source "$(dirname "$0")/gate_summary.sh"
#     GATE_CLEANUP='rm -rf "$OUT"'     # optional, evaluated on exit
#     gate_init "perf gate"
#     gate_section "build"
#     ...
#     gate_section "8-core mix floor"
#     ...
#     gate_skip "shellcheck" "shellcheck not installed"
#
# Each gate_section closes the previous one as "pass" — under `set -e`
# the script would have exited otherwise — and the single EXIT trap
# closes the final section with the script's real verdict, so a
# mid-section failure is attributed to the section that was running.
# Scripts that previously installed their own cleanup trap must use
# GATE_CLEANUP instead (a later `trap ... EXIT` would replace ours).

GATE_NAME=""
GATE_SECTIONS=()
GATE_CURRENT=""
GATE_T0=0
GATE_START=0

gate_init() {
    GATE_NAME="$1"
    GATE_START=$SECONDS
    trap gate__exit EXIT
}

# gate__close STATUS NOTE — record the currently open section, if any.
gate__close() {
    [ -n "$GATE_CURRENT" ] || return 0
    GATE_SECTIONS+=("$GATE_CURRENT"$'\t'"$1"$'\t'"$((SECONDS - GATE_T0))"$'\t'"${2:-}")
    GATE_CURRENT=""
}

gate_section() {
    gate__close pass ""
    GATE_CURRENT="$1"
    GATE_T0=$SECONDS
}

# gate_skip NAME REASON — record a section that was deliberately not run
# (e.g. an optional linter missing from the host) as "skip", never as a
# silent pass.
gate_skip() {
    gate__close pass ""
    GATE_SECTIONS+=("$1"$'\t'skip$'\t'0$'\t'"${2:-}")
}

gate__exit() {
    local code=$?
    if [ "$code" -eq 0 ]; then
        gate__close pass ""
    else
        gate__close FAIL "exit status $code"
    fi
    local verdict=pass
    [ "$code" -ne 0 ] && verdict=FAIL
    local total=$((SECONDS - GATE_START))
    local row name status secs note
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        {
            echo "### ${GATE_NAME}: ${verdict} (${total}s)"
            echo
            echo "| section | result | time | note |"
            echo "| --- | --- | ---: | --- |"
            if [ "${#GATE_SECTIONS[@]}" -gt 0 ]; then
                for row in "${GATE_SECTIONS[@]}"; do
                    IFS=$'\t' read -r name status secs note <<<"$row"
                    echo "| $name | $status | ${secs}s | $note |"
                done
            fi
            echo
        } >>"$GITHUB_STEP_SUMMARY"
    fi
    {
        echo "-- ${GATE_NAME}: ${verdict} (${total}s)"
        if [ "${#GATE_SECTIONS[@]}" -gt 0 ]; then
            for row in "${GATE_SECTIONS[@]}"; do
                IFS=$'\t' read -r name status secs note <<<"$row"
                printf '   %-44s %-4s %5ss  %s\n' "$name" "$status" "$secs" "$note"
            done
        fi
    } >&2
    eval "${GATE_CLEANUP:-}"
    exit "$code"
}
