#!/usr/bin/env bash
# Mechanisms gate: the mechanism-arm experiment families added on top
# of the paper grid — `ext-dspatch` (DSPatch dual-pattern prefetcher under
# PADC), `ext-happy` (HAPPY hybrid page policy crossed with APS/APD), and
# `ext-refresh` (per-bank refresh and DARP refresh-access parallelism) —
# must satisfy the same determinism contract as the rest of the suite:
# byte-identical JSONL across --jobs 1 / --jobs 8 and across all four
# --fast-forward modes. A profiled run must additionally show a nonzero
# DSPatch modulator flip count ("dspatch_flips" in the profile object),
# proving the Coverage<->Accuracy modulator actually engages at smoke
# scale rather than sitting in one mode; the ext-happy table must carry
# rows for all three row policies; the ext-refresh family must emit one
# table per refresh policy, report nonzero DARP refresh pulls, and an
# all-bank refresh run must stay byte-identical to the legacy
# extended-timing model (RefreshPolicy::AllBank is a pure rename of the
# pre-RefreshPolicy behavior, never a semantic change).
#
# No determinism comparison uses --profile: profiled payloads carry wall
# times and are legitimately nondeterministic. The profiled run is only
# mined for the (deterministic) flip counter.
#
# Set MECH_GATE_OUT to keep the produced artifacts in a known directory
# (CI uploads it on failure); otherwise a temp dir is used and cleaned.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/gate_summary.sh
source "$(dirname "$0")/gate_summary.sh"
gate_init "mechanisms gate"

FAMILIES=(ext-dspatch ext-happy ext-refresh)
if [ -n "${MECH_GATE_OUT:-}" ]; then
    OUT="$MECH_GATE_OUT"
    mkdir -p "$OUT"
else
    OUT="$(mktemp -d)"
    GATE_CLEANUP='rm -rf "$OUT"'
fi

gate_section "build"
cargo build --release --workspace --quiet
REPRO=target/release/repro
SIM=target/release/padcsim

gate_section "jobs 1 vs jobs 8"
echo "== mechanisms: --jobs 1 vs --jobs 8 on ${FAMILIES[*]} (smoke scale)"
"$REPRO" --smoke --jobs 1 --no-progress --jsonl "$OUT/j1.jsonl" "${FAMILIES[@]}" >/dev/null
"$REPRO" --smoke --jobs 8 --no-progress --jsonl "$OUT/j8.jsonl" "${FAMILIES[@]}" >/dev/null
if ! cmp "$OUT/j1.jsonl" "$OUT/j8.jsonl"; then
    echo "FAIL: JSONL differs between --jobs 1 and --jobs 8" >&2
    diff "$OUT/j1.jsonl" "$OUT/j8.jsonl" >&2 || true
    exit 1
fi
echo "   byte-identical ($(wc -c <"$OUT/j1.jsonl") bytes, $(wc -l <"$OUT/j1.jsonl") rows)"

gate_section "fast-forward four-mode matrix"
echo "== mechanisms: off vs global vs horizon vs event on ${FAMILIES[*]}"
for mode in off global horizon event; do
    "$REPRO" --smoke --jobs 8 --no-progress --fast-forward "$mode" \
        --jsonl "$OUT/ff-$mode.jsonl" "${FAMILIES[@]}" >/dev/null
done
for mode in global horizon event; do
    if ! cmp "$OUT/ff-off.jsonl" "$OUT/ff-$mode.jsonl"; then
        echo "FAIL: JSONL differs between --fast-forward off and $mode" >&2
        diff "$OUT/ff-off.jsonl" "$OUT/ff-$mode.jsonl" >&2 || true
        exit 1
    fi
done
echo "   byte-identical across all four modes ($(wc -c <"$OUT/ff-off.jsonl") bytes)"

gate_section "table shape"
echo "== mechanisms: ext-dspatch emits both prefetcher sets, ext-happy all three policies,"
echo "   ext-refresh all three refresh policies"
for table in ext-dspatch-stream ext-dspatch-dspatch; do
    if ! grep -q "\"id\":\"$table\"" "$OUT/j1.jsonl"; then
        echo "FAIL: ext-dspatch artifact misses table $table" >&2
        exit 1
    fi
done
for variant in open-row closed-row happy; do
    if ! grep -q "($variant)" "$OUT/j1.jsonl"; then
        echo "FAIL: ext-happy artifact misses the $variant rows" >&2
        exit 1
    fi
done
for table in ext-refresh-all-bank ext-refresh-per-bank ext-refresh-darp; do
    if ! grep -q "\"id\":\"$table\"" "$OUT/j1.jsonl"; then
        echo "FAIL: ext-refresh artifact misses table $table" >&2
        exit 1
    fi
done
echo "   both ext-dspatch tables present; ext-happy covers open/closed/happy;"
echo "   ext-refresh covers all-bank/per-bank/darp"

gate_section "dspatch modulator engages"
echo "== mechanisms: profiled ext-dspatch run must report nonzero dspatch_flips"
"$REPRO" --smoke --jobs 8 --no-progress --profile \
    --jsonl "$OUT/profiled.jsonl" "${FAMILIES[@]}" >/dev/null
FLIPS=$(grep '"id":"ext-dspatch-' "$OUT/profiled.jsonl" \
    | grep -o '"dspatch_flips":[0-9]*' | head -n1 | cut -d: -f2)
if [ -z "$FLIPS" ]; then
    echo "FAIL: profiled ext-dspatch payload carries no dspatch_flips counter" >&2
    exit 1
fi
if [ "$FLIPS" -eq 0 ]; then
    echo "FAIL: DSPatch modulator never flipped modes at smoke scale (dspatch_flips=0)" >&2
    exit 1
fi
echo "   dspatch_flips=$FLIPS (nonzero; modulator exercised both modes)"

gate_section "refresh: all-bank == legacy, darp pulls engage"
echo "== mechanisms: RefreshPolicy::AllBank must be byte-identical to the legacy"
echo "   extended-timing model, and the profiled ext-refresh run must pull refreshes"
REFRESH_MIX=(--bench mcf_06 --bench libquantum_06 --bench lbm_06 --bench milc_06)
"$SIM" "${REFRESH_MIX[@]}" --policy padc --instructions 30000 \
    --extended-timing --json >"$OUT/refresh-legacy.json"
"$SIM" "${REFRESH_MIX[@]}" --policy padc --instructions 30000 \
    --extended-timing --refresh-policy all-bank --json >"$OUT/refresh-allbank.json"
if ! cmp "$OUT/refresh-legacy.json" "$OUT/refresh-allbank.json"; then
    echo "FAIL: --refresh-policy all-bank diverged from the legacy extended-timing" >&2
    echo "      model — AllBank must stay a pure rename of the pre-RefreshPolicy" >&2
    echo "      behavior (DESIGN.md §15)" >&2
    exit 1
fi
PULLS=$(grep '"id":"ext-refresh-' "$OUT/profiled.jsonl" \
    | grep -o '"refresh_pulls":[0-9]*' | head -n1 | cut -d: -f2)
if [ -z "$PULLS" ]; then
    echo "FAIL: profiled ext-refresh payload carries no refresh_pulls counter" >&2
    exit 1
fi
if [ "$PULLS" -eq 0 ]; then
    echo "FAIL: DARP never pulled a refresh into an idle bank at smoke scale (refresh_pulls=0)" >&2
    exit 1
fi
echo "   all-bank byte-identical to legacy ($(wc -c <"$OUT/refresh-legacy.json") bytes);" \
     "refresh_pulls=$PULLS"

echo "== mech_gate.sh: all green"
