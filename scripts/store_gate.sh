#!/usr/bin/env bash
# Store/serve gate: CLI-level robustness of the persistent unit store and
# the `padcsim serve` request server.
#
# 1. Poisoned store: truncated and garbage entry files must be treated as
#    misses — the warm rerun recomputes exactly those units, produces
#    byte-identical JSONL, and heals the store (a further rerun is all
#    hits again). Disk contents are never trusted.
# 2. gc: `padcsim store gc --max-bytes N` must evict down to the bound
#    (oldest entries first) and report consistent stats.
# 3. serve: a stdio serve session fed two overlapping requests plus a
#    malformed one must answer every request (two complete done events,
#    one error event) without crashing, with zero failed jobs.
#
# Set STORE_GATE_OUT to keep the produced artifacts in a known directory
# (CI uploads it on failure); otherwise a temp dir is used and cleaned.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/gate_summary.sh
source "$(dirname "$0")/gate_summary.sh"
gate_init "store/serve gate"

if [ -n "${STORE_GATE_OUT:-}" ]; then
    OUT="$STORE_GATE_OUT"
    mkdir -p "$OUT"
else
    OUT="$(mktemp -d)"
    GATE_CLEANUP='rm -rf "$OUT"'
fi

gate_section "build"
cargo build --release --workspace --quiet
SIM=target/release/padcsim

SUBSET=(fig6 tab5)
STORE="$OUT/store"
rm -rf "$STORE"

gate_section "cold populate"
echo "== store: cold populate on ${SUBSET[*]} (smoke scale)"
"$SIM" --suite --smoke --jobs 2 --exec planned --store "$STORE" \
    --jsonl "$OUT/cold.jsonl" "${SUBSET[@]}" 2>"$OUT/cold-stderr.txt"
grep '^store:' "$OUT/cold-stderr.txt"
"$SIM" store stats --store "$STORE"

gate_section "poisoned entries recompute and heal"
echo "== store: poisoned entries must be recomputed, not trusted"
mapfile -t ENTRIES < <(find "$STORE/objects" -type f | sort)
if [ "${#ENTRIES[@]}" -lt 3 ]; then
    echo "FAIL: expected at least 3 store entries, found ${#ENTRIES[@]}" >&2
    exit 1
fi
truncate -s 10 "${ENTRIES[0]}"
echo "not a store entry" >"${ENTRIES[1]}"
"$SIM" --suite --smoke --jobs 2 --exec planned --store "$STORE" \
    --jsonl "$OUT/healed.jsonl" "${SUBSET[@]}" 2>"$OUT/healed-stderr.txt"
if ! cmp "$OUT/cold.jsonl" "$OUT/healed.jsonl"; then
    echo "FAIL: poisoned store changed the artifact" >&2
    diff "$OUT/cold.jsonl" "$OUT/healed.jsonl" >&2 || true
    exit 1
fi
if ! grep -q '^store: hits=[0-9]* misses=2 ' "$OUT/healed-stderr.txt"; then
    echo "FAIL: expected exactly the 2 poisoned entries to miss:" >&2
    grep '^store:' "$OUT/healed-stderr.txt" >&2 || true
    exit 1
fi
"$SIM" --suite --smoke --jobs 2 --exec planned --store "$STORE" \
    --jsonl "$OUT/rewarm.jsonl" "${SUBSET[@]}" 2>"$OUT/rewarm-stderr.txt"
if ! grep -q '^store: hits=[0-9]* misses=0 ' "$OUT/rewarm-stderr.txt"; then
    echo "FAIL: recomputation did not heal the store:" >&2
    grep '^store:' "$OUT/rewarm-stderr.txt" >&2 || true
    exit 1
fi
echo "   byte-identical, 2 recomputed, store healed"

gate_section "gc eviction bound"
echo "== store: gc --max-bytes evicts down to the bound"
BOUND=20000
"$SIM" store gc --max-bytes "$BOUND" --store "$STORE" | tee "$OUT/gc.txt"
remaining=$("$SIM" store stats --store "$STORE" | grep -o 'bytes=[0-9]*' | cut -d= -f2)
if [ "$remaining" -gt "$BOUND" ]; then
    echo "FAIL: $remaining bytes remain after gc --max-bytes $BOUND" >&2
    exit 1
fi
echo "   $remaining bytes <= $BOUND"

gate_section "serve stdio requests"
echo "== serve: overlapping requests plus a malformed one over stdio"
printf '%s\n' \
    '{"id":"r1","experiments":["fig6","tab5"],"scale":"smoke"}' \
    'this is not json' \
    '{"id":"r2","experiments":["fig6","tab7"],"scale":"smoke"}' |
    "$SIM" serve --stdio --jobs 2 --smoke --store "$STORE" \
        >"$OUT/serve.out" 2>"$OUT/serve-stderr.txt"
grep '^serve: requests=' "$OUT/serve-stderr.txt"
done_count=$(grep -c '"event":"done"' "$OUT/serve.out" || true)
error_count=$(grep -c '"event":"error"' "$OUT/serve.out" || true)
if [ "$done_count" -ne 2 ] || [ "$error_count" -ne 1 ]; then
    echo "FAIL: expected 2 done + 1 error events, got $done_count + $error_count:" >&2
    cat "$OUT/serve.out" >&2
    exit 1
fi
if grep '"event":"done"' "$OUT/serve.out" | grep -qv '"failed":0'; then
    echo "FAIL: a serve request reported failed jobs:" >&2
    grep '"event":"done"' "$OUT/serve.out" >&2
    exit 1
fi
echo "   2 requests served, malformed line answered with an error event"

echo "== store_gate.sh: all green"
