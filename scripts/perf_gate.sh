#!/usr/bin/env bash
# CI perf gate: the fast-forward core-cycle skip ratio on a smoke-scale
# 8-core memory-hog mix must not regress below the floor recorded in
# BENCH_fastforward.json (minus tolerance). This catches changes that
# silently break horizon/idle classification (e.g. a core that always
# reports busy): results would stay byte-identical — so the determinism
# gate would pass — while the multi-core speedup quietly evaporates.
#
# Set PERF_GATE_OUT to keep the report and profile output in a known
# directory (CI uploads it on failure); otherwise a temp dir is used.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -n "${PERF_GATE_OUT:-}" ]; then
    OUT="$PERF_GATE_OUT"
    mkdir -p "$OUT"
else
    OUT="$(mktemp -d)"
    trap 'rm -rf "$OUT"' EXIT
fi

cargo build --release --workspace --quiet
SIM=target/release/padcsim

# The 8-core memory-hog mix from BENCH_fastforward.json, smoke-scaled.
MIX=(--bench mcf_06 --bench libquantum_06 --bench swim_00 --bench GemsFDTD_06
     --bench lbm_06 --bench milc_06 --bench leslie3d_06 --bench soplex_06)
INSTRUCTIONS=60000

floor=$(python3 - <<'EOF'
import json
gate = json.load(open("BENCH_fastforward.json"))["ci_gate"]
print(gate["min_core_skip_pct"] - gate["tolerance_pct"])
EOF
)

echo "== perf: 8-core memory-hog mix, --fast-forward horizon, floor ${floor}%"
"$SIM" "${MIX[@]}" --policy padc --instructions "$INSTRUCTIONS" \
    --fast-forward horizon --profile \
    >"$OUT/report.txt" 2>"$OUT/profile.txt"
grep '^profile:' "$OUT/profile.txt"

skip=$(grep -o 'core_skip_pct=[0-9.]*' "$OUT/profile.txt" | head -n1 | cut -d= -f2)
if [ -z "$skip" ]; then
    echo "FAIL: no core_skip_pct in --profile output" >&2
    exit 1
fi
if ! awk -v s="$skip" -v f="$floor" 'BEGIN { exit !(s >= f) }'; then
    echo "FAIL: core skip ratio ${skip}% fell below the ${floor}% floor" >&2
    echo "      (floor = ci_gate.min_core_skip_pct - ci_gate.tolerance_pct" >&2
    echo "       from BENCH_fastforward.json; re-measure and update it only" >&2
    echo "       if the regression is understood and intended)" >&2
    exit 1
fi
echo "   core skip ratio ${skip}% >= floor ${floor}%"
echo "== perf_gate.sh: all green"
