#!/usr/bin/env bash
# CI perf gate, four sections:
#
# 1. The fast-forward core-cycle skip ratio on a smoke-scale 8-core
#    memory-hog mix must not regress below the floor recorded in
#    BENCH_fastforward.json (minus tolerance). This catches changes that
#    silently break horizon/idle classification (e.g. a core that always
#    reports busy): results would stay byte-identical — so the determinism
#    gate would pass — while the multi-core speedup quietly evaporates.
#
# 1b. The event-mode controller skip ratio on the same mix and on the
#    mcf single must not regress below the floors recorded in
#    BENCH_event.json (minus tolerance). Same rationale one layer down:
#    a change that stops proving controller idleness keeps results
#    byte-identical while the O(events) controller loop silently
#    degrades back to O(cycles).
#
# 1c. The request buffer's owner cache must stay effective (floors from
#    BENCH_buffer.json, counters from the same event-mix run):
#    owner_recomputes must not exceed owner_invalidations (structural
#    dirty-bit invariant) and the owner reuse rate must not fall below
#    the recorded floor. Deterministic counts, not timings.
#
# 2. The plan/reduce sub-job machinery must keep doing its job
#    structurally (floors from BENCH_subjob.json): planned experiments
#    must decompose into at least the recorded number of sub-jobs, peak
#    sub-job concurrency must never exceed --jobs, and the single-run
#    memo must still deduplicate shared grid cells (computed stays at the
#    recorded unique-unit count while requested exceeds it). All three
#    are deterministic counts, not timings, so the gate is immune to
#    machine noise and meaningful even on a 1-CPU container.
#
# 3. The persistent unit store must keep warm runs free (floors from
#    BENCH_store.json): a warm rerun against a just-populated store must
#    hit at least min_warm_hits units, miss at most max_warm_misses, and
#    execute zero simulation units. This catches fingerprint instability,
#    where warm runs silently recompute everything while results stay
#    byte-identical.
#
# 4. The mechanism-arm families (ext-dspatch, ext-happy, ext-refresh)
#    must keep their structural shape (floors from BENCH_mech.json): the
#    cold run must decompose into at least min_subjobs_executed units
#    under the --jobs bound with the memo deduplicating alone references,
#    and a warm rerun must resolve entirely from the store. This catches
#    the new arms' configs (DsPatchConfig, RowPolicy::Happy,
#    RefreshPolicy) going fingerprint-unstable while results stay
#    byte-identical.
#
# 5. The DARP refresh-pull pass must keep firing (floors from
#    BENCH_refresh.json): a --refresh-policy darp run on the 8-core mix
#    must pull at least min_refresh_pulls refreshes into idle banks and
#    charge nonzero refresh_stall_cycles, while an all-bank run reports
#    zero pulls (pulls exist only under DARP). Deterministic counts, not
#    timings. This catches the idle-bank eligibility test silently going
#    always-false: results would drift only at the IPC level while the
#    mechanism the ext-refresh family measures quietly turns into plain
#    per-bank refresh.
#
# Set PERF_GATE_OUT to keep the report and profile output in a known
# directory (CI uploads it on failure); otherwise a temp dir is used.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/gate_summary.sh
source "$(dirname "$0")/gate_summary.sh"
gate_init "perf gate"

if [ -n "${PERF_GATE_OUT:-}" ]; then
    OUT="$PERF_GATE_OUT"
    mkdir -p "$OUT"
else
    OUT="$(mktemp -d)"
    GATE_CLEANUP='rm -rf "$OUT"'
fi

gate_section "build"
cargo build --release --workspace --quiet
SIM=target/release/padcsim

# The 8-core memory-hog mix from BENCH_fastforward.json, smoke-scaled.
MIX=(--bench mcf_06 --bench libquantum_06 --bench swim_00 --bench GemsFDTD_06
     --bench lbm_06 --bench milc_06 --bench leslie3d_06 --bench soplex_06)
INSTRUCTIONS=60000

floor=$(python3 - <<'EOF'
import json
gate = json.load(open("BENCH_fastforward.json"))["ci_gate"]
print(gate["min_core_skip_pct"] - gate["tolerance_pct"])
EOF
)

gate_section "core skip floor (horizon, 8-core mix)"
echo "== perf: 8-core memory-hog mix, --fast-forward horizon, floor ${floor}%"
"$SIM" "${MIX[@]}" --policy padc --instructions "$INSTRUCTIONS" \
    --fast-forward horizon --profile \
    >"$OUT/report.txt" 2>"$OUT/profile.txt"
grep '^profile:' "$OUT/profile.txt"

skip=$(grep -o '"core_skip_pct":[0-9.]*' "$OUT/profile.txt" | head -n1 | cut -d: -f2)
if [ -z "$skip" ]; then
    echo "FAIL: no core_skip_pct in --profile output" >&2
    exit 1
fi
if ! awk -v s="$skip" -v f="$floor" 'BEGIN { exit !(s >= f) }'; then
    echo "FAIL: core skip ratio ${skip}% fell below the ${floor}% floor" >&2
    echo "      (floor = ci_gate.min_core_skip_pct - ci_gate.tolerance_pct" >&2
    echo "       from BENCH_fastforward.json; re-measure and update it only" >&2
    echo "       if the regression is understood and intended)" >&2
    exit 1
fi
echo "   core skip ratio ${skip}% >= floor ${floor}%"

# -- 1b: event-mode controller skip floors (BENCH_event.json) ----------
CTRL_GATE=$(python3 - <<'PYEOF'
import json
gate = json.load(open("BENCH_event.json"))["ci_gate"]
tol = gate["tolerance_pct"]
print(gate["mix_instructions"], gate["mix_min_ctrl_skip_pct"] - tol,
      gate["mcf_instructions"], gate["mcf_min_ctrl_skip_pct"] - tol)
PYEOF
)
read -r CTRL_MIX_INSTR CTRL_MIX_FLOOR CTRL_MCF_INSTR CTRL_MCF_FLOOR <<<"$CTRL_GATE"

gate_section "ctrl skip floor (event, 8-core mix)"
echo "== perf: 8-core mix, --fast-forward event, ctrl floor ${CTRL_MIX_FLOOR}%"
"$SIM" "${MIX[@]}" --policy padc --instructions "$CTRL_MIX_INSTR" \
    --fast-forward event --profile \
    >"$OUT/event-mix-report.txt" 2>"$OUT/event-mix-profile.txt"
grep '^profile:' "$OUT/event-mix-profile.txt"
ctrl_skip=$(grep -o '"ctrl_skip_pct":[0-9.]*' "$OUT/event-mix-profile.txt" | head -n1 | cut -d: -f2)
if [ -z "$ctrl_skip" ]; then
    echo "FAIL: no ctrl_skip_pct in --profile output" >&2
    exit 1
fi
if ! awk -v s="$ctrl_skip" -v f="$CTRL_MIX_FLOOR" 'BEGIN { exit !(s >= f) }'; then
    echo "FAIL: controller skip ratio ${ctrl_skip}% fell below the ${CTRL_MIX_FLOOR}% floor" >&2
    echo "      (floor = ci_gate.mix_min_ctrl_skip_pct - ci_gate.tolerance_pct" >&2
    echo "       from BENCH_event.json; re-measure and update it only if the" >&2
    echo "       regression is understood and intended)" >&2
    exit 1
fi
echo "   ctrl skip ratio ${ctrl_skip}% >= floor ${CTRL_MIX_FLOOR}%"

# -- 1c: request-buffer owner-cache floors (BENCH_buffer.json) ---------
# Reuses the event-mix profile captured above. Two checks: the
# structural invariant owner_recomputes <= owner_invalidations (each
# recompute consumes one clean->dirty transition; a violation means the
# owner cache is being bypassed), and a reuse-rate floor (catches
# over-invalidation: results stay byte-identical while every mutation
# dirties every bank and the O(entries) scans quietly return).
BUF_FLOOR=$(python3 - <<'PYEOF'
import json
gate = json.load(open("BENCH_buffer.json"))["ci_gate"]
print(gate["mix_min_reuse_pct"] - gate["tolerance_pct"])
PYEOF
)

gate_section "owner-cache floors (event, 8-core mix)"
echo "== perf: owner cache on the same event-mix run, reuse floor ${BUF_FLOOR}%"
owner_line=$(grep '^profile: ' "$OUT/event-mix-profile.txt" || true)
recomputes=$(echo "$owner_line" | grep -o '"owner_recomputes":[0-9]*' | cut -d: -f2)
invalidations=$(echo "$owner_line" | grep -o '"owner_invalidations":[0-9]*' | cut -d: -f2)
reuses=$(echo "$owner_line" | grep -o '"owner_reuses":[0-9]*' | cut -d: -f2)
if [ -z "$recomputes" ] || [ -z "$invalidations" ] || [ -z "$reuses" ]; then
    echo "FAIL: no owner_* counters in --profile output" >&2
    exit 1
fi
if [ "$recomputes" -gt "$invalidations" ]; then
    echo "FAIL: owner_recomputes=$recomputes > owner_invalidations=$invalidations" >&2
    echo "      — each recompute must consume one clean->dirty transition;" >&2
    echo "      the owner cache's dirty-bit protocol is being bypassed" >&2
    exit 1
fi
reuse_pct=$(awk -v r="$reuses" -v c="$recomputes" \
    'BEGIN { printf "%.1f", 100 * r / (r + c) }')
if ! awk -v s="$reuse_pct" -v f="$BUF_FLOOR" 'BEGIN { exit !(s >= f) }'; then
    echo "FAIL: owner reuse rate ${reuse_pct}% fell below the ${BUF_FLOOR}% floor" >&2
    echo "      (floor = ci_gate.mix_min_reuse_pct - ci_gate.tolerance_pct" >&2
    echo "       from BENCH_buffer.json; re-measure and update it only if" >&2
    echo "       the extra invalidation is understood and intended)" >&2
    exit 1
fi
echo "   owner reuse ${reuse_pct}% >= floor ${BUF_FLOOR}%," \
     "recomputes $recomputes <= invalidations $invalidations"

gate_section "ctrl skip floor (event, mcf single)"
echo "== perf: mcf single, --fast-forward event, ctrl floor ${CTRL_MCF_FLOOR}%"
"$SIM" --bench mcf_06 --policy padc --instructions "$CTRL_MCF_INSTR" \
    --fast-forward event --profile \
    >"$OUT/event-mcf-report.txt" 2>"$OUT/event-mcf-profile.txt"
grep '^profile:' "$OUT/event-mcf-profile.txt"
ctrl_skip=$(grep -o '"ctrl_skip_pct":[0-9.]*' "$OUT/event-mcf-profile.txt" | head -n1 | cut -d: -f2)
if [ -z "$ctrl_skip" ]; then
    echo "FAIL: no ctrl_skip_pct in --profile output" >&2
    exit 1
fi
if ! awk -v s="$ctrl_skip" -v f="$CTRL_MCF_FLOOR" 'BEGIN { exit !(s >= f) }'; then
    echo "FAIL: controller skip ratio ${ctrl_skip}% fell below the ${CTRL_MCF_FLOOR}% floor" >&2
    echo "      (floor = ci_gate.mcf_min_ctrl_skip_pct - ci_gate.tolerance_pct" >&2
    echo "       from BENCH_event.json)" >&2
    exit 1
fi
echo "   ctrl skip ratio ${ctrl_skip}% >= floor ${CTRL_MCF_FLOOR}%"

REPRO=target/release/repro

SUBJOB_GATE=$(python3 - <<'PYEOF'
import json
gate = json.load(open("BENCH_subjob.json"))["ci_gate"]
print(gate["jobs"], gate["min_subjobs_executed"],
      gate["max_singles_computed"], " ".join(gate["subset"]))
PYEOF
)
read -r SUBJOB_JOBS MIN_SUBJOBS MAX_SINGLES SUBJOB_SUBSET <<<"$SUBJOB_GATE"

gate_section "sub-job decomposition floors"
echo "== subjobs: ${SUBJOB_SUBSET} at smoke scale, --jobs ${SUBJOB_JOBS}"
# shellcheck disable=SC2086
"$REPRO" --smoke --jobs "$SUBJOB_JOBS" --no-progress --exec planned \
    --jsonl "$OUT/subjob.jsonl" --summary "$OUT/subjob-summary.json" \
    $SUBJOB_SUBSET >/dev/null 2>"$OUT/subjob-stderr.txt"

executed=$(grep -o '"subjobs_executed": [0-9]*' "$OUT/subjob-summary.json" | grep -o '[0-9]*$')
peak=$(grep -o '"subjobs_peak_concurrent": [0-9]*' "$OUT/subjob-summary.json" | grep -o '[0-9]*$')
memo=$(grep '^single_run_memo:' "$OUT/subjob-stderr.txt" || true)
requested=$(echo "$memo" | grep -o 'requested=[0-9]*' | cut -d= -f2)
computed=$(echo "$memo" | grep -o 'computed=[0-9]*' | cut -d= -f2)

if [ -z "$executed" ] || [ -z "$peak" ]; then
    echo "FAIL: summary JSON carries no sub-job stats:" >&2
    cat "$OUT/subjob-summary.json" >&2
    exit 1
fi
if [ "$executed" -lt "$MIN_SUBJOBS" ]; then
    echo "FAIL: only $executed sub-jobs executed (floor $MIN_SUBJOBS):" >&2
    echo "      planned experiments are no longer decomposing into units" >&2
    exit 1
fi
if [ "$peak" -gt "$SUBJOB_JOBS" ]; then
    echo "FAIL: peak sub-job concurrency $peak exceeds --jobs $SUBJOB_JOBS" >&2
    exit 1
fi
if [ -z "$requested" ] || [ -z "$computed" ]; then
    echo "FAIL: no single_run_memo line on stderr — memo accounting is gone" >&2
    exit 1
fi
if [ "$computed" -gt "$MAX_SINGLES" ]; then
    echo "FAIL: $computed single-core runs computed (ceiling $MAX_SINGLES):" >&2
    echo "      the single-run memo stopped deduplicating shared grid cells" >&2
    exit 1
fi
if [ "$requested" -le "$computed" ]; then
    echo "FAIL: requested=$requested computed=$computed — no dedup observed" >&2
    exit 1
fi
echo "   $executed sub-jobs (floor $MIN_SUBJOBS), peak concurrency $peak <= $SUBJOB_JOBS"
echo "   memo: $requested requested -> $computed computed (ceiling $MAX_SINGLES)"

STORE_GATE=$(python3 - <<'PYEOF'
import json
gate = json.load(open("BENCH_store.json"))["ci_gate"]
print(gate["jobs"], gate["min_warm_hits"], gate["max_warm_misses"],
      " ".join(gate["subset"]))
PYEOF
)
read -r STORE_JOBS MIN_WARM_HITS MAX_WARM_MISSES STORE_SUBSET <<<"$STORE_GATE"

gate_section "store warm-hit floors"
echo "== store: ${STORE_SUBSET} at smoke scale, cold then warm, --jobs ${STORE_JOBS}"
# Floors from BENCH_store.json: a warm rerun against the store the cold
# run just populated must resolve every unit from disk (hits >= floor,
# misses <= ceiling) and execute zero simulation units. This catches
# fingerprint instability (e.g. a nondeterministic field leaking into the
# store meta): results would stay byte-identical — so the determinism
# gate would pass — while every "warm" run quietly recomputes everything.
STORE_DIR="$OUT/store"
rm -rf "$STORE_DIR"
# shellcheck disable=SC2086
"$REPRO" --smoke --jobs "$STORE_JOBS" --no-progress --exec planned \
    --store "$STORE_DIR" --jsonl "$OUT/store-cold.jsonl" \
    $STORE_SUBSET >/dev/null 2>"$OUT/store-cold-stderr.txt"
# shellcheck disable=SC2086
"$REPRO" --smoke --jobs "$STORE_JOBS" --no-progress --exec planned \
    --store "$STORE_DIR" --jsonl "$OUT/store-warm.jsonl" \
    --summary "$OUT/store-summary.json" \
    $STORE_SUBSET >/dev/null 2>"$OUT/store-warm-stderr.txt"

store_line=$(grep '^store:' "$OUT/store-warm-stderr.txt" || true)
hits=$(echo "$store_line" | grep -o 'hits=[0-9]*' | cut -d= -f2)
misses=$(echo "$store_line" | grep -o 'misses=[0-9]*' | cut -d= -f2)
warm_exec=$(grep -o '"subjobs_executed": [0-9]*' "$OUT/store-summary.json" | grep -o '[0-9]*$')
if [ -z "$hits" ] || [ -z "$misses" ] || [ -z "$warm_exec" ]; then
    echo "FAIL: store telemetry missing (stderr line or summary stats):" >&2
    cat "$OUT/store-warm-stderr.txt" >&2
    exit 1
fi
if [ "$hits" -lt "$MIN_WARM_HITS" ]; then
    echo "FAIL: warm run hit only $hits units (floor $MIN_WARM_HITS):" >&2
    echo "      units stopped resolving through the store" >&2
    exit 1
fi
if [ "$misses" -gt "$MAX_WARM_MISSES" ]; then
    echo "FAIL: warm run missed $misses units (ceiling $MAX_WARM_MISSES):" >&2
    echo "      the unit fingerprint is no longer stable across runs" >&2
    exit 1
fi
if [ "$warm_exec" -ne 0 ]; then
    echo "FAIL: warm run executed $warm_exec simulation units (expected 0)" >&2
    exit 1
fi
echo "   warm: $hits hits (floor $MIN_WARM_HITS), $misses misses" \
     "(ceiling $MAX_WARM_MISSES), 0 units executed"

MECH_GATE=$(python3 - <<'PYEOF'
import json
gate = json.load(open("BENCH_mech.json"))["ci_gate"]
print(gate["jobs"], gate["min_subjobs_executed"], gate["max_singles_computed"],
      gate["min_warm_hits"], gate["max_warm_misses"], " ".join(gate["subset"]))
PYEOF
)
read -r MECH_JOBS MECH_MIN_SUBJOBS MECH_MAX_SINGLES MECH_MIN_HITS MECH_MAX_MISSES MECH_SUBSET <<<"$MECH_GATE"

gate_section "mechanism-family floors"
echo "== mech: ${MECH_SUBSET} at smoke scale, cold then warm, --jobs ${MECH_JOBS}"
MECH_STORE="$OUT/mech-store"
rm -rf "$MECH_STORE"
# shellcheck disable=SC2086
"$REPRO" --smoke --jobs "$MECH_JOBS" --no-progress --exec planned \
    --store "$MECH_STORE" --jsonl "$OUT/mech-cold.jsonl" \
    --summary "$OUT/mech-cold-summary.json" \
    $MECH_SUBSET >/dev/null 2>"$OUT/mech-cold-stderr.txt"
# shellcheck disable=SC2086
"$REPRO" --smoke --jobs "$MECH_JOBS" --no-progress --exec planned \
    --store "$MECH_STORE" --jsonl "$OUT/mech-warm.jsonl" \
    --summary "$OUT/mech-warm-summary.json" \
    $MECH_SUBSET >/dev/null 2>"$OUT/mech-warm-stderr.txt"

mech_exec=$(grep -o '"subjobs_executed": [0-9]*' "$OUT/mech-cold-summary.json" | grep -o '[0-9]*$')
mech_peak=$(grep -o '"subjobs_peak_concurrent": [0-9]*' "$OUT/mech-cold-summary.json" | grep -o '[0-9]*$')
mech_memo=$(grep '^single_run_memo:' "$OUT/mech-cold-stderr.txt" || true)
mech_computed=$(echo "$mech_memo" | grep -o 'computed=[0-9]*' | cut -d= -f2)
mech_store_line=$(grep '^store:' "$OUT/mech-warm-stderr.txt" || true)
mech_hits=$(echo "$mech_store_line" | grep -o 'hits=[0-9]*' | cut -d= -f2)
mech_misses=$(echo "$mech_store_line" | grep -o 'misses=[0-9]*' | cut -d= -f2)
mech_warm_exec=$(grep -o '"subjobs_executed": [0-9]*' "$OUT/mech-warm-summary.json" | grep -o '[0-9]*$')
if [ -z "$mech_exec" ] || [ -z "$mech_peak" ] || [ -z "$mech_computed" ] ||
    [ -z "$mech_hits" ] || [ -z "$mech_misses" ] || [ -z "$mech_warm_exec" ]; then
    echo "FAIL: mechanism-family telemetry missing (summary, memo, or store line)" >&2
    exit 1
fi
if [ "$mech_exec" -lt "$MECH_MIN_SUBJOBS" ]; then
    echo "FAIL: only $mech_exec mechanism units executed (floor $MECH_MIN_SUBJOBS):" >&2
    echo "      ext-dspatch/ext-happy/ext-refresh stopped decomposing into their arm grids" >&2
    exit 1
fi
if [ "$mech_peak" -gt "$MECH_JOBS" ]; then
    echo "FAIL: peak mechanism sub-job concurrency $mech_peak exceeds --jobs $MECH_JOBS" >&2
    exit 1
fi
if [ "$mech_computed" -gt "$MECH_MAX_SINGLES" ]; then
    echo "FAIL: $mech_computed single-core runs computed (ceiling $MECH_MAX_SINGLES):" >&2
    echo "      the families stopped sharing IPC_alone references" >&2
    exit 1
fi
if [ "$mech_hits" -lt "$MECH_MIN_HITS" ] || [ "$mech_misses" -gt "$MECH_MAX_MISSES" ]; then
    echo "FAIL: warm mechanism run: hits=$mech_hits (floor $MECH_MIN_HITS)," >&2
    echo "      misses=$mech_misses (ceiling $MECH_MAX_MISSES) — the new arms'" >&2
    echo "      configs are no longer fingerprinting stably (BENCH_mech.json)" >&2
    exit 1
fi
if [ "$mech_warm_exec" -ne 0 ]; then
    echo "FAIL: warm mechanism run executed $mech_warm_exec units (expected 0)" >&2
    exit 1
fi
echo "   cold: $mech_exec units (floor $MECH_MIN_SUBJOBS), peak $mech_peak <= $MECH_JOBS," \
     "memo computed $mech_computed <= $MECH_MAX_SINGLES"
echo "   warm: $mech_hits hits (floor $MECH_MIN_HITS), $mech_misses misses" \
     "(ceiling $MECH_MAX_MISSES), 0 units executed"

# -- 5: DARP refresh-pull floors (BENCH_refresh.json) ------------------
REFRESH_GATE=$(python3 - <<'PYEOF'
import json
gate = json.load(open("BENCH_refresh.json"))["ci_gate"]
print(gate["mix_instructions"], gate["min_refresh_pulls"])
PYEOF
)
read -r REFRESH_INSTR MIN_REFRESH_PULLS <<<"$REFRESH_GATE"

gate_section "refresh-pull floors (darp, 8-core mix)"
echo "== refresh: 8-core mix, --refresh-policy darp, pulls floor ${MIN_REFRESH_PULLS}"
"$SIM" "${MIX[@]}" --policy padc --instructions "$REFRESH_INSTR" \
    --refresh-policy darp --fast-forward event --profile \
    >"$OUT/refresh-darp-report.txt" 2>"$OUT/refresh-darp-profile.txt"
grep '^profile:' "$OUT/refresh-darp-profile.txt"
pulls=$(grep -o '"refresh_pulls":[0-9]*' "$OUT/refresh-darp-profile.txt" | cut -d: -f2)
stalls=$(grep -o '"refresh_stall_cycles":[0-9]*' "$OUT/refresh-darp-profile.txt" | cut -d: -f2)
if [ -z "$pulls" ] || [ -z "$stalls" ]; then
    echo "FAIL: no refresh_pulls/refresh_stall_cycles in --profile output" >&2
    exit 1
fi
if [ "$pulls" -lt "$MIN_REFRESH_PULLS" ]; then
    echo "FAIL: only $pulls DARP refresh pulls (floor $MIN_REFRESH_PULLS):" >&2
    echo "      the idle-bank refresh-pull pass stopped firing — DARP has" >&2
    echo "      silently degraded to plain per-bank refresh (BENCH_refresh.json)" >&2
    exit 1
fi
if [ "$stalls" -eq 0 ]; then
    echo "FAIL: refresh_stall_cycles is 0 with $pulls pulls — pull accounting broke" >&2
    exit 1
fi
"$SIM" "${MIX[@]}" --policy padc --instructions "$REFRESH_INSTR" \
    --refresh-policy all-bank --extended-timing --fast-forward event --profile \
    >"$OUT/refresh-allbank-report.txt" 2>"$OUT/refresh-allbank-profile.txt"
ab_pulls=$(grep -o '"refresh_pulls":[0-9]*' "$OUT/refresh-allbank-profile.txt" | cut -d: -f2)
if [ "$ab_pulls" != "0" ]; then
    echo "FAIL: all-bank run reports refresh_pulls=$ab_pulls (pulls are DARP-only)" >&2
    exit 1
fi
echo "   darp: $pulls pulls (floor $MIN_REFRESH_PULLS), $stalls stall cycles;" \
     "all-bank: 0 pulls"
echo "== perf_gate.sh: all green"
