#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from the harness JSONL artifact plus
per-experiment paper-vs-measured commentary.

Usage:
  python3 scripts/make_experiments_md.py repro_full.jsonl > EXPERIMENTS.md
  python3 scripts/make_experiments_md.py --check repro_full.jsonl

`--check` is the CI drift gate: instead of printing, it regenerates the
document in memory and compares it against the committed EXPERIMENTS.md,
exiting 1 (with a unified diff on stderr) when the committed file is
stale relative to the artifact.

The input is the `--jsonl` output of `repro` / `padcsim --suite`: one
object per experiment, `{"id", "status", "result": {"paper_ref",
"tables": [...]}}`, with failed experiments carrying `"error"` instead of
`"result"`. The tables are re-rendered in the same aligned-text format as
the binaries' stdout. A legacy `repro_full.txt` capture still works (the
format is auto-detected).
"""
import difflib
import json
import os
import sys

COMMENTARY = {
    "fig1": """**Paper**: with a stream prefetcher, neither rigid policy wins everywhere:
demand-first is better for the five prefetch-unfriendly benchmarks (for
art/milc it is what keeps prefetching from hurting), demand-prefetch-equal is
better for the five friendly ones (libquantum +169% vs +60%).
**Measured**: four of the five unfriendly benchmarks favor demand-first as
in the paper (galgel flips to equal), but the friendly five also favor
demand-first in our substrate, so the paper's crossover collapses to one
side — the same demand-first bias behind the fig6/fig16 divergence
(DESIGN.md §7). ❌""",
    "fig2": """**Paper**: the worked example — with useful prefetches, servicing the
row-hit prefetches X/Z first finishes everything in 575 cycles vs 725 under
demand-first.
**Measured**: same structure at our timing: demand-first services Y first
(Y at 349, all done at 599) while equal services the row hits first (X at
149, all done at 399). The demand-first/equal contrast and ordering match
exactly. ✅""",
    "fig4": """**Paper**: (a) 56% of milc's prefetches take >1600 cycles of memory
service and 86% of those are useless; useful prefetches are serviced faster
on average. (b) milc's accuracy has strong phases (near 0% for a long
stretch).
**Measured**: (a) the useless histogram is bottom-heavy toward the 1601+
bucket while useful prefetches concentrate at shorter service times; (b) the
sampled PAR series swings across phases exactly as designed into the milc
profile. ✅""",
    "fig6": """**Paper**: single-core over 55 benchmarks — demand-pref-equal ≈
demand-first on gmean (+0.5%), APS +3.6%, PADC +4.3%.
**Measured**: class-2 rows reproduce (PADC recovers ammp/omnetpp/xalancbmk
via dropping), but the accurate streaming rows favor demand-first (only
galgel/mcf tip to equal), so the PADC gmean lands ~3% *below* demand-first
instead of above. This is the reproduction's main divergence; see
DESIGN.md §7 for the analysis. ❌""",
    "fig7": """**Paper**: PADC reduces stall-time-per-load by 5% vs demand-first.
**Measured**: SPL orderings per class match (prefetching halves SPL for
friendly apps; PADC ≈ best rigid per benchmark); the 55-benchmark mean SPL
of PADC is within a few percent of demand-first. ⚠️""",
    "fig8": """**Paper**: PADC cuts bus traffic 10.4% over the suite, almost entirely
useless-prefetch lines (APD).
**Measured**: PADC has the lowest traffic of all prefetching arms; the cut
comes from the useless column as in the paper. ✅""",
    "tab5": """**Paper**: benchmark characteristics (IPC, MPKI, RBH, ACC, COV, class).
**Measured**: our synthetic stand-ins land in the intended classes: the
class-1 streaming set measures ACC ≥ ~0.8 and high COV, the class-2 set
ACC ≤ ~0.4, the class-0 set near-zero MPKI. Absolute IPC/MPKI values are
substitution artifacts. ✅ (by construction; asserted in
tests/table5_classes.rs)""",
    "tab7": """**Paper**: RBHU — demand-pref-equal has the highest row-buffer hit rate
for useful requests; APS tracks it closely; demand-first is clearly lower.
**Measured**: same ordering: equal ≥ APS/PADC > demand-first > no-pref on
the mean, and per-benchmark for the streaming set. ✅""",
    "fig9": """**Paper**: 2-core — PADC +8.4% WS, +6.4% HS, −10% traffic vs
demand-first.
**Measured**: PADC trails demand-first by ~5% on WS/HS but carries the
lowest traffic of the prefetching arms; equal trails further. ⚠️""",
    "case1": """**Paper**: all-friendly 4-core mix — equal +28% WS over demand-first;
PADC +31%; small (−0.9%) traffic saving.
**Measured**: every prefetch-aggressive arm beats demand-first (equal
1.637, APS 1.615, PADC 1.607 vs 1.599 WS); traffic roughly flat. The
coverage mechanism is clearly visible in the traffic mix (equal/APS
convert demand lines into useful-prefetch lines: 46K useful under equal
vs 30K under demand-first). Direction ✓, factor compressed. ⚠️""",
    "case2": """**Paper**: all-unfriendly mix — PADC +17.7% WS / +21.5% HS over
demand-first, −9.1% traffic, within 2% of no-prefetching.
**Measured**: PADC is the best arm on WS (2.159 vs 2.136 demand-first,
+1.1%; HS a wash) with −5.9% traffic, and lands *above* no-pref (2.159 vs
2.101); equal is the clear loser exactly as in the paper. ✅ (smaller
factor)""",
    "case3": """**Paper**: mixed mix — equal helps the friendly cores but starves the
unfriendly ones; APD frees resources, PADC best, traffic −14.5%.
**Measured**: textbook reproduction — equal gives libquantum IS 0.79 while
starving omnetpp/galgel to 0.20/0.19 (UF 4.2); PADC balances best (UF
1.36), wins HS, sits within 2% of APS's best WS, and cuts traffic 18.6%
vs demand-first. ✅""",
    "tab8": """**Paper**: urgency markedly improves fairness and HS at tiny WS cost
(aps-no-urgent UF 2.57 vs aps 1.73; PADC-no-urgent 4.55 vs PADC 1.84).
**Measured**: same pattern — no-urgent variants starve the unfriendly cores
(UF 3.0 for aps-apd-no-urgent vs 1.36 with urgency; HS 0.349 vs 0.440) and
urgency also helps WS here. ✅""",
    "tab9": """**Paper**: 4× libquantum — equal/APS/PADC all reach the same WS
(+18.2% over demand-first) with even per-instance speedups.
**Measured**: equal/APS/PADC converge near the same WS (1.00–1.01, up to
+3.9% over demand-first) — the table's key point that the aggressive arms
all feed identical friendly instances equally well; per-instance evenness
is noisier here (UF 1.32 for the adaptive arms vs 1.08 demand-first). ⚠️""",
    "tab10": """**Paper**: 4× milc — demand-first/APS beat equal; adding APD makes PADC
best and recovers the prefetching loss.
**Measured**: equal is the worst prefetching arm on WS/HS as in the paper,
and adding APD makes PADC clearly best (WS 2.549 vs 2.398 demand-first,
+6.3%) — dropping recovers the prefetching loss, the table's main point.
✅""",
    "fig16": """**Paper**: 4-core, 32 workloads — PADC +8.2% WS, +4.1% HS, −10.1%
traffic vs demand-first.
**Measured**: PADC has the lowest traffic of the prefetching arms (−6.8%)
and beats equal and APS, but lands ~8% below demand-first on WS — the
single-core equal-mode divergence aggregated (DESIGN.md §7). Traffic and
adaptivity shapes ✓, headline WS ordering ✗. ❌""",
    "fig17": """**Paper**: 8-core — rigid policies make prefetching *hurt* (demand-first
−1.2%, equal −3.0% vs no-pref); PADC +9.9% WS, −9.4% traffic.
**Measured**: the rigid-policy collapse reproduces dramatically for equal
(2.07 vs 3.16 no-pref) while demand-first still gains (+7.6%); PADC cuts
traffic −7.6% but sits below demand-first on WS as at 4 cores. ⚠️""",
    "fig19": """**Paper**: ranking on 4-core: ≈WS, +0.9% HS, UF 1.63→1.53.
**Measured**: at 4 cores ranking is performance-neutral in our substrate —
WS/HS/UF all move under 1%; the mechanism's value only shows at 8 cores
(fig20). ⚠️""",
    "fig20": """**Paper**: ranking on 8-core: +2.0% WS, +5.4% HS, −10.4% UF — more
valuable as contention grows.
**Measured**: at 8 cores ranking improves UF clearly (2.72 vs 2.94, −7.6%)
and nudges HS up for a −1.3% WS give-back; the paper's larger 8-core
*gain* (driven by deeper starvation in its more saturated system) appears
here only as the UF improvement. ⚠️""",
    "fig21": """**Paper**: dual controllers, 4-core — baseline jumps; PADC still +5.9%
WS and −12.9% traffic.
**Measured**: doubling channels lifts every arm strongly; PADC keeps the
lowest traffic and tracks the best arm. ⚠️""",
    "fig22": """**Paper**: dual controllers, 8-core — prefetching helps again even for
rigid policies once bandwidth doubles; PADC +5.5% WS, −13.2% traffic.
**Measured**: same reversal — with two channels the prefetching arms all
beat no-pref at 8 cores, and PADC has the lowest traffic. ✅""",
    "fig23": """**Paper**: row-buffer sweep — demand-first *degrades below no-pref* at
≥64KB rows; PADC wins at every size (+8.8% vs no-pref at 64KB).
**Measured**: the mid-size crossover reproduces: demand-first's advantage
shrinks as rows grow and APS/PADC overtake it at 16–64KB (2.63 vs 2.60 at
64KB) because only the adaptive policies exploit the larger open rows for
useful requests; at 128KB demand-first recovers, so the paper's full
inversion is only partial here. ⚠️""",
    "fig24": """**Paper**: closed-row policy — PADC still works (+7.6% over
demand-first-closed); open-row PADC best overall by 1.1%.
**Measured**: PADC-closed beats equal-closed and tracks demand-first; our
substrate slightly favors closed-row overall (the paper's slightly favors
open-row). ⚠️""",
    "fig25": """**Paper**: L2 sweep 512KB–8MB — PADC wins at every size; equal starts
beating demand-first beyond 1MB; dropping matters less as caches grow.
**Measured**: every arm's WS saturates beyond ~2MB per core (working sets
fit), the equal arm stays depressed at every size, and the arm ordering
is size-stable — the paper's "interference persists at large caches"
point holds, its exact crossovers do not. ⚠️""",
    "fig26": """**Paper**: shared L2, 4-core — PADC +8.0%; equal degrades (−2.4%) due
to cross-core pollution (traffic +22.3%).
**Measured**: equal's pollution blow-up reproduces (highest traffic, worst
UF of the prefetching arms); PADC beats equal/APS with the lowest traffic.
⚠️""",
    "fig27": """**Paper**: shared L2, 8-core — equal −10.4% WS with +46.3% traffic.
**Measured**: equal craters (WS 2.16 vs 3.45 demand-first, traffic +28%,
UF 7.9) — the paper's starkest anti-equal result, clearly reproduced.
PADC saves 8.2% traffic vs demand-first. ✅""",
    "fig28": """**Paper**: PADC helps under stride, C/DC, and Markov prefetchers too;
Markov benefits least (inaccurate for SPEC) but PADC still +2.2% WS /
−10.3% traffic via dropping.
**Measured**: stride mirrors the 4-core stream pattern (demand-first leads
in our substrate, PADC beats equal with the lowest traffic); under C/DC
the aggressive arms win outright (PADC ties equal, +7.5% over
demand-first); Markov is the weakest performer as in the paper, pinned
near no-pref. ⚠️""",
    "fig29": """**Paper**: DDPF (+1.5%) and FDP (+1.7%) help demand-first less than APD
(+2.6%); combined with APS they reach +6.3/+7.4% but PADC (+8.2%) wins
because APD keeps useful prefetches that DDPF/FDP filter away.
**Measured**: demand-first-apd is the best demand-first variant (the
paper's ordering APD > DDPF > FDP broadly holds) and FDP cuts traffic the
most at a WS cost — the paper's performance-vs-traffic trade-off. The
aps-* combinations inherit the equal-mode divergence. ⚠️""",
    "fig30": """**Paper**: DDPF/FDP under demand-pref-equal recover little (+2.3/+2.7%)
because they remove useful prefetches; PADC +8.2%.
**Measured**: DDPF/FDP recover little over plain equal (FDP +2.7% — the
paper's own number — DDPF a wash) and both stay well below APS/PADC,
exactly the paper's point that filtering cannot rescue the rigid equal
mode. ✅""",
    "fig31": """**Paper**: permutation interleaving +3.8% on its own; PADC is
complementary (+5.4% over demand-first-perm, −11.3% traffic).
**Measured**: permutation helps every arm (fewer row conflicts; no-pref
+2.7%, PADC +2.1%) and composes with PADC, but the perm arms' traffic
spread is under 2%, so the paper's −11.3% saving does not appear at this
scale. ⚠️""",
    "fig32": """**Paper**: runahead +3.7% on demand-first; PADC remains effective on a
runahead CMP (+6.7% over demand-first-ra, −10.2% traffic).
**Measured**: runahead helps the baseline strongly (+10.1% WS on
demand-first — accurate demand-like requests during stalls) and composes
with PADC (+8.9% over plain PADC); the ra arms' traffic sits within ~2%,
with demand-first-ra lowest rather than PADC-ra. ⚠️""",
    "ext-batch": """**Extension** (not in the paper): PAR-BS batch formation layered on
PADC. Measured: batching trades a little throughput for bounded
starvation, consistent with the PAR-BS paper's design goal.""",
    "ext-timing": """**Extension** (not in the paper): full DDR3 constraints (tRAS/tWR/tRTP/
tFAW/refresh). Measured: every arm slows by a similar factor and the
policy ordering is unchanged — supporting the paper's choice of the
simpler three-latency model.""",
    "ext-wdrain": """**Extension** (not in the paper): watermark write-drain. Measured: at
these scales writeback pressure is modest, so effects are small; the
mechanism is exercised by unit tests.""",
    "ext-dspatch": """**Extension** (not in the paper): the DSPatch dual-spatial-pattern
prefetcher (Bera et al., MICRO 2019) swapped in for the stream
prefetcher, same four arms per table. Measured: the modal
coverage/accuracy modulator makes DSPatch far less accurate than stream
on these generated workloads (demand-first WS 2.23 vs 2.84), and under
it the arm ordering *inverts*: PADC becomes the best arm (WS 2.34,
+4.6% over demand-first) where under stream demand-first wins — PADC's
adaptive dropping matters most exactly when prefetch accuracy is low
and shifting, the paper's core claim (§6.4).""",
    "ext-happy": """**Extension** (not in the paper): the HAPPY hybrid page policy
(Ghasempour et al. 2015) as a third row policy beside static open-/
closed-row, crossed with the APS/APD arms. Measured: closed-row wins on
these workloads (demand-first WS 2.93 vs 2.84 open) and HAPPY's per-row
2-bit reuse counters land between the statics, recovering ~52% of the
closed-row gain (WS 2.89) with no oracle knowledge — and the ordering
is stable across all three arms. Orthogonal to PADC: policy choice
moves WS by ~3% while arm choice moves it by ~10%.""",
    "ext-refresh": """**Extension** (not in the paper): refresh-access parallelism after
Chang et al.'s DARP (DESIGN.md §15) — all-bank (channel-wide tRFC
stall), per-bank (staggered windows, tRFCpb = tRFC/2, only the owning
bank stalls), and darp (per-bank plus out-of-order refresh pulled into
idle banks and write drains), each crossed with demand-first and PADC.
Measured: per-bank refresh recovers ~1.1% WS over all-bank for both
arms (demand-first 2.144 → 2.167, PADC 2.174 → 2.199) — parallelism
across banks hides most of the refresh penalty by itself. DARP's pulls
add another +1.8% for demand-first (2.206, the largest arm total) but
are neutral for PADC (2.192): prefetch-aware scheduling keeps banks
busy with useful prefetches, so the idle windows DARP exploits are
scarcer — the two mechanisms compete for the same slack. PADC stays
the better arm under all-bank and per-bank; under darp the baseline
catches up.""",
    "cost": """**Paper**: Tables 1–2 — 34,720 bits (~4.25KB) on the 4-core system, 0.2%
of L2 capacity; 1,824 bits if prefetch bits already exist.
**Measured**: the cost model reproduces the paper's table *exactly* (the
arithmetic is deterministic): 34,720 bits, 0.207% of L2. ✅ (bit-exact)""",
    "tab6": """**Paper**: Table 6 — drop thresholds 100 / 1,500 / 50,000 / 100,000
cycles for accuracy bands 0–10 / 10–30 / 30–70 / 70–100%.
**Measured**: identical by construction. ✅ (bit-exact)""",
}

HEADER = """# EXPERIMENTS — paper vs. measured

For every table and figure in the paper's evaluation (§6): what the paper
reports, what this reproduction measures, and a verdict on the *shape*
(✅ reproduced · ⚠️ partially · ❌ diverges, with the analysis referenced).

Measured numbers come from one full-scale harness run (the committed
`repro_full.jsonl`, regenerated via the parallel `padc-harness` suite
runner — the JSONL bytes are identical for any `--jobs` value):

```bash
cargo run --release -p padc-bench --bin repro -- --jsonl repro_full.jsonl
```

Scale: 800K instructions single-core, 400K/core multi-core; 32/24/12
workloads for 2/4/8-core aggregates; 8 workloads for sweeps; seed 1.
Absolute values are not comparable to the paper (its substrate was a
proprietary x86 simulator running SPEC traces; ours is a from-scratch
simulator on synthetic traces — DESIGN.md §2); shapes are the target.

**Summary.** Of the 33 paper artifacts, 14 reproduce cleanly (✅), 16
partially (⚠️), and 3 diverge (❌: fig1's rigid-policy crossover, fig6's
single-core gmean ordering, and fig16's headline 4-core WS ordering).
All three divergences trace to one substrate difference analysed in
DESIGN.md §7: in our model the rigid demand-first policy is stronger for
accurate-prefetch streaming apps than in the paper's system, so APS's
equal-like mode gives back a few percent exactly where the paper gains
it. The bandwidth (APD traffic savings), fairness (urgency, ranking at
8 cores), adaptivity (per-class policy selection, phase tracking), and
sensitivity results (row size, cache size, channels, shared caches,
other prefetchers, DDPF/FDP, permutation, runahead) reproduce at least
in shape.

---
"""


def render_table(table):
    """Mirrors ExpTable's Display impl (aligned text) for JSONL tables."""
    lines = [f"== {table['id']} — {table['title']}"]
    label_w = max([4] + [len(label) for label, _ in table["rows"]])
    lines.append(" " * label_w + "".join(f" {c:>14}" for c in table["columns"]))
    for label, vals in table["rows"]:
        cells = "".join(
            f" {v:>14.0f}" if abs(v) >= 1000.0 else f" {v:>14.3f}" for v in vals
        )
        lines.append(f"{label:<{label_w}}" + cells)
    return "\n".join(lines)


def blocks_from_jsonl(text):
    """One rendered block per JSONL row, keyed by experiment id."""
    blocks = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        exp_id, status = row["id"], row["status"]
        if status == "ok" or "result" in row:
            ref = row["result"]["paper_ref"]
            parts = [f"# {exp_id} — {ref}"]
            for table in row["result"]["tables"]:
                parts.append(render_table(table) + "\n")
            if status != "ok":
                parts.append(f"_(status: {status})_")
            blocks[exp_id] = "\n".join(parts).strip()
        else:
            blocks[exp_id] = (
                f"# {exp_id} — FAILED ({status}): {row.get('error', 'no detail')}"
            )
    return blocks


def blocks_from_text(text):
    """Legacy format: split a stdout capture on '# id — ref' headers."""
    blocks = {}
    cur_id, cur_lines = None, []
    for line in text.splitlines():
        if line.startswith("# ") and " — " in line:
            if cur_id:
                blocks.setdefault(cur_id, "\n".join(cur_lines).strip())
            cur_id = line[2:].split(" — ")[0].strip()
            cur_lines = [line]
        elif line.startswith("EXIT="):
            continue
        else:
            cur_lines.append(line)
    if cur_id:
        blocks.setdefault(cur_id, "\n".join(cur_lines).strip())
    return blocks


def render_document(path):
    """The full EXPERIMENTS.md text for the artifact at `path`."""
    text = open(path).read()
    if text.lstrip().startswith("{"):
        blocks = blocks_from_jsonl(text)
    else:
        blocks = blocks_from_text(text)

    out = [HEADER]
    for exp_id, commentary in COMMENTARY.items():
        out.append(f"## {exp_id}\n")
        out.append(commentary.strip() + "\n")
        if exp_id in blocks:
            out.append("```text\n" + blocks[exp_id] + "\n```\n")
        else:
            out.append("_(not present in this run; regenerate with "
                       f"`repro {exp_id}`)_\n")
    return "\n".join(out) + "\n"


def check(path):
    """Exit 1 when the committed EXPERIMENTS.md is stale vs `path`."""
    committed_path = os.path.join(os.path.dirname(path) or ".",
                                  "EXPERIMENTS.md")
    expected = render_document(path)
    try:
        committed = open(committed_path).read()
    except FileNotFoundError:
        print(f"drift: {committed_path} does not exist; regenerate with\n"
              f"  python3 scripts/make_experiments_md.py {path} "
              f"> {committed_path}", file=sys.stderr)
        return 1
    if committed == expected:
        print(f"EXPERIMENTS.md is in sync with {path}")
        return 0
    diff = difflib.unified_diff(
        committed.splitlines(keepends=True),
        expected.splitlines(keepends=True),
        fromfile=committed_path, tofile=f"regenerated from {path}")
    sys.stderr.writelines(diff)
    print(f"drift: {committed_path} is stale relative to {path}; "
          f"regenerate with\n  python3 scripts/make_experiments_md.py "
          f"{path} > {committed_path}", file=sys.stderr)
    return 1


def main(argv):
    if argv and argv[0] == "--check":
        if len(argv) != 2:
            print("usage: make_experiments_md.py --check ARTIFACT",
                  file=sys.stderr)
            return 2
        return check(argv[1])
    if len(argv) != 1:
        print("usage: make_experiments_md.py [--check] ARTIFACT",
              file=sys.stderr)
        return 2
    sys.stdout.write(render_document(argv[0]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
