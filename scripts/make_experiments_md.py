#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from repro_full.txt plus per-experiment
paper-vs-measured commentary.

Usage: python3 scripts/make_experiments_md.py repro_full.txt > EXPERIMENTS.md
"""
import sys

COMMENTARY = {
    "fig1": """**Paper**: with a stream prefetcher, neither rigid policy wins everywhere:
demand-first is better for the five prefetch-unfriendly benchmarks (for
art/milc it is what keeps prefetching from hurting), demand-prefetch-equal is
better for the five friendly ones (libquantum +169% vs +60%).
**Measured**: the crossover reproduces — the unfriendly five (galgel, ammp,
xalancbmk, art) favor demand-first, and milc/swim/bwaves/lbm favor equal.
libquantum favors demand-first in our substrate (see DESIGN.md §7). ⚠️""",
    "fig2": """**Paper**: the worked example — with useful prefetches, servicing the
row-hit prefetches X/Z first finishes everything in 575 cycles vs 725 under
demand-first.
**Measured**: same structure at our timing: demand-first services Y first
(Y at 349, all done at 599) while equal services the row hits first (X at
149, all done at 399). The demand-first/equal contrast and ordering match
exactly. ✅""",
    "fig4": """**Paper**: (a) 56% of milc's prefetches take >1600 cycles of memory
service and 86% of those are useless; useful prefetches are serviced faster
on average. (b) milc's accuracy has strong phases (near 0% for a long
stretch).
**Measured**: (a) the useless histogram is bottom-heavy toward the 1601+
bucket while useful prefetches concentrate at shorter service times; (b) the
sampled PAR series swings across phases exactly as designed into the milc
profile. ✅""",
    "fig6": """**Paper**: single-core over 55 benchmarks — demand-pref-equal ≈
demand-first on gmean (+0.5%), APS +3.6%, PADC +4.3%.
**Measured**: class-2 rows reproduce (PADC recovers ammp/omnetpp/xalancbmk
via dropping); several class-1 rows favor equal (swim/bwaves/milc/gcc at
some scales) but libquantum-style rows favor demand-first, so the PADC
gmean lands ~3% *below* demand-first instead of above. This is the
reproduction's main divergence; see DESIGN.md §7 for the analysis. ❌""",
    "fig7": """**Paper**: PADC reduces stall-time-per-load by 5% vs demand-first.
**Measured**: SPL orderings per class match (prefetching halves SPL for
friendly apps; PADC ≈ best rigid per benchmark); the 55-benchmark mean SPL
of PADC is within a few percent of demand-first. ⚠️""",
    "fig8": """**Paper**: PADC cuts bus traffic 10.4% over the suite, almost entirely
useless-prefetch lines (APD).
**Measured**: PADC has the lowest traffic of all prefetching arms; the cut
comes from the useless column as in the paper. ✅""",
    "tab5": """**Paper**: benchmark characteristics (IPC, MPKI, RBH, ACC, COV, class).
**Measured**: our synthetic stand-ins land in the intended classes: the
class-1 streaming set measures ACC ≥ ~0.8 and high COV, the class-2 set
ACC ≤ ~0.4, the class-0 set near-zero MPKI. Absolute IPC/MPKI values are
substitution artifacts. ✅ (by construction; asserted in
tests/table5_classes.rs)""",
    "tab7": """**Paper**: RBHU — demand-pref-equal has the highest row-buffer hit rate
for useful requests; APS tracks it closely; demand-first is clearly lower.
**Measured**: same ordering: equal ≥ APS/PADC > demand-first > no-pref on
the mean, and per-benchmark for the streaming set. ✅""",
    "fig9": """**Paper**: 2-core — PADC +8.4% WS, +6.4% HS, −10% traffic vs
demand-first.
**Measured**: PADC ties demand-first on WS/HS (within ~2%) with the lowest
traffic of the prefetching arms; equal trails. ⚠️""",
    "case1": """**Paper**: all-friendly 4-core mix — equal +28% WS over demand-first;
PADC +31%; small (−0.9%) traffic saving.
**Measured**: PADC edges out demand-first (1.627 vs 1.614 WS) with APS just
behind, equal trails; traffic roughly flat. The coverage mechanism is
clearly visible in the traffic mix (equal/APS convert demand lines into
useful-prefetch lines: 45K useful under equal vs 29K under demand-first).
Direction ✓, factor compressed. ⚠️""",
    "case2": """**Paper**: all-unfriendly mix — PADC +17.7% WS / +21.5% HS over
demand-first, −9.1% traffic, within 2% of no-prefetching.
**Measured**: PADC is the best arm (WS 2.154 vs 2.068 demand-first, +4.2%;
HS +3.5%; traffic −5.4%) and lands *above* no-pref (2.154 vs 2.131);
equal is the clear loser exactly as in the paper. ✅ (smaller factor)""",
    "case3": """**Paper**: mixed mix — equal helps the friendly cores but starves the
unfriendly ones; APD frees resources, PADC best, traffic −14.5%.
**Measured**: textbook reproduction — equal gives libquantum IS 0.73 while
starving omnetpp/galgel to 0.21/0.18 (UF 4.1); PADC balances (UF 1.45),
wins WS and HS, and cuts traffic 19.6%. ✅""",
    "tab8": """**Paper**: urgency markedly improves fairness and HS at tiny WS cost
(aps-no-urgent UF 2.57 vs aps 1.73; PADC-no-urgent 4.55 vs PADC 1.84).
**Measured**: same pattern — no-urgent variants starve the unfriendly cores
(UF 2.6 for aps-apd-no-urgent vs 1.45 with urgency; HS 0.339 vs 0.443) and
urgency also helps WS here. ✅""",
    "tab9": """**Paper**: 4× libquantum — equal/APS/PADC all reach the same WS
(+18.2% over demand-first) with even per-instance speedups.
**Measured**: equal leads WS as in the paper, and the adaptive arms give
the most even per-instance speedups (UF 1.12 vs 1.40 for equal) —
identical instances progress together, the table's key point. ⚠️""",
    "tab10": """**Paper**: 4× milc — demand-first/APS beat equal; adding APD makes PADC
best and recovers the prefetching loss.
**Measured**: equal is worst on HS/UF as in the paper; PADC restores even
progress and the best balance. ⚠️ (WS ordering between demand-first and
PADC is within noise)""",
    "fig16": """**Paper**: 4-core, 32 workloads — PADC +8.2% WS, +4.1% HS, −10.1%
traffic vs demand-first.
**Measured**: PADC has the lowest traffic of the prefetching arms (−6.6%)
and beats equal and APS, but lands ~5% below demand-first on WS — the
single-core equal-mode divergence aggregated (DESIGN.md §7). Traffic and
adaptivity shapes ✓, headline WS ordering ✗. ❌""",
    "fig17": """**Paper**: 8-core — rigid policies make prefetching *hurt* (demand-first
−1.2%, equal −3.0% vs no-pref); PADC +9.9% WS, −9.4% traffic.
**Measured**: the rigid-policy collapse reproduces dramatically for equal
(2.44 vs 3.81 no-pref) and demand-first's gain is small (+4.8%); PADC cuts
traffic −7.8% but sits below demand-first on WS as at 4 cores. ⚠️""",
    "fig19": """**Paper**: ranking on 4-core: ≈WS, +0.9% HS, UF 1.63→1.53.
**Measured**: same character — ranking trades a little WS for better UF/HS
at 4 cores. ✅""",
    "fig20": """**Paper**: ranking on 8-core: +2.0% WS, +5.4% HS, −10.4% UF — more
valuable as contention grows.
**Measured**: at 8 cores ranking improves UF as at 4 cores with a slightly
larger WS give-back; the paper's larger 8-core *gain* (driven by deeper
starvation in its more saturated system) appears here only as the UF
improvement. ⚠️""",
    "fig21": """**Paper**: dual controllers, 4-core — baseline jumps; PADC still +5.9%
WS and −12.9% traffic.
**Measured**: doubling channels lifts every arm strongly; PADC keeps the
lowest traffic and tracks the best arm. ⚠️""",
    "fig22": """**Paper**: dual controllers, 8-core — prefetching helps again even for
rigid policies once bandwidth doubles; PADC +5.5% WS, −13.2% traffic.
**Measured**: same reversal — with two channels the prefetching arms all
beat no-pref at 8 cores, and PADC has the lowest traffic. ✅""",
    "fig23": """**Paper**: row-buffer sweep — demand-first *degrades below no-pref* at
≥64KB rows; PADC wins at every size (+8.8% vs no-pref at 64KB).
**Measured**: the crossover reproduces: demand-first's advantage shrinks
then inverts as rows grow (APS/PADC overtake it from 16KB up, 2.63 vs 2.44
at 128KB) because only the adaptive policies exploit the larger open rows
for useful requests. ✅""",
    "fig24": """**Paper**: closed-row policy — PADC still works (+7.6% over
demand-first-closed); open-row PADC best overall by 1.1%.
**Measured**: PADC-closed beats equal-closed and tracks demand-first; our
substrate slightly favors closed-row overall (the paper's slightly favors
open-row). ⚠️""",
    "fig25": """**Paper**: L2 sweep 512KB–8MB — PADC wins at every size; equal starts
beating demand-first beyond 1MB; dropping matters less as caches grow.
**Measured**: every arm's WS saturates beyond ~2MB per core (working sets
fit), the equal-vs-demand-first gap narrows slightly with size, and the
arm ordering is size-stable — the paper's "interference persists at large
caches" point holds, its exact crossovers do not. ⚠️""",
    "fig26": """**Paper**: shared L2, 4-core — PADC +8.0%; equal degrades (−2.4%) due
to cross-core pollution (traffic +22.3%).
**Measured**: equal's pollution blow-up reproduces (highest traffic, worst
UF of the prefetching arms); PADC beats equal/APS with the lowest traffic.
⚠️""",
    "fig27": """**Paper**: shared L2, 8-core — equal −10.4% WS with +46.3% traffic.
**Measured**: equal craters (WS 2.56 vs 4.09 demand-first, traffic +26%,
UF 8.7) — the paper's starkest anti-equal result, clearly reproduced.
PADC saves 7.4% traffic vs demand-first. ✅""",
    "fig28": """**Paper**: PADC helps under stride, C/DC, and Markov prefetchers too;
Markov benefits least (inaccurate for SPEC) but PADC still +2.2% WS /
−10.3% traffic via dropping.
**Measured**: all three prefetchers show the same pattern as stream (PADC
best-or-tied among prefetching arms with the lowest traffic); the Markov
prefetcher is the weakest performer and benefits mostly through dropping.
✅""",
    "fig29": """**Paper**: DDPF (+1.5%) and FDP (+1.7%) help demand-first less than APD
(+2.6%); combined with APS they reach +6.3/+7.4% but PADC (+8.2%) wins
because APD keeps useful prefetches that DDPF/FDP filter away.
**Measured**: demand-first-apd is the best demand-first variant (the
paper's ordering APD > FDP ≈ DDPF reproduces) and FDP cuts traffic the
most at a WS cost — the paper's performance-vs-traffic trade-off. The
aps-* combinations inherit the equal-mode divergence. ⚠️""",
    "fig30": """**Paper**: DDPF/FDP under demand-pref-equal recover little (+2.3/+2.7%)
because they remove useful prefetches; PADC +8.2%.
**Measured**: equal+DDPF/FDP improves on plain equal but stays below
APS/PADC. ✅""",
    "fig31": """**Paper**: permutation interleaving +3.8% on its own; PADC is
complementary (+5.4% over demand-first-perm, −11.3% traffic).
**Measured**: permutation helps every arm (fewer row conflicts) and PADC's
benefits compose with it (lowest traffic among perm arms). ✅""",
    "fig32": """**Paper**: runahead +3.7% on demand-first; PADC remains effective on a
runahead CMP (+6.7% over demand-first-ra, −10.2% traffic).
**Measured**: runahead helps the baseline (accurate demand-like requests
during stalls) and composes with PADC; PADC-ra has the lowest traffic of
the ra arms. ✅""",
    "ext-batch": """**Extension** (not in the paper): PAR-BS batch formation layered on
PADC. Measured: batching trades a little throughput for bounded
starvation, consistent with the PAR-BS paper's design goal.""",
    "ext-timing": """**Extension** (not in the paper): full DDR3 constraints (tRAS/tWR/tRTP/
tFAW/refresh). Measured: every arm slows by a similar factor and the
policy ordering is unchanged — supporting the paper's choice of the
simpler three-latency model.""",
    "ext-wdrain": """**Extension** (not in the paper): watermark write-drain. Measured: at
these scales writeback pressure is modest, so effects are small; the
mechanism is exercised by unit tests.""",
    "cost": """**Paper**: Tables 1–2 — 34,720 bits (~4.25KB) on the 4-core system, 0.2%
of L2 capacity; 1,824 bits if prefetch bits already exist.
**Measured**: the cost model reproduces the paper's table *exactly* (the
arithmetic is deterministic): 34,720 bits, 0.207% of L2. ✅ (bit-exact)""",
    "tab6": """**Paper**: Table 6 — drop thresholds 100 / 1,500 / 50,000 / 100,000
cycles for accuracy bands 0–10 / 10–30 / 30–70 / 70–100%.
**Measured**: identical by construction. ✅ (bit-exact)""",
}

HEADER = """# EXPERIMENTS — paper vs. measured

For every table and figure in the paper's evaluation (§6): what the paper
reports, what this reproduction measures, and a verdict on the *shape*
(✅ reproduced · ⚠️ partially · ❌ diverges, with the analysis referenced).

Measured numbers come from one full-scale harness run (the committed
`repro_full.txt`):

```bash
cargo run --release -p padc-bench --bin repro -- all | tee repro_full.txt
```

Scale: 800K instructions single-core, 400K/core multi-core; 32/24/12
workloads for 2/4/8-core aggregates; 8 workloads for sweeps; seed 1.
Absolute values are not comparable to the paper (its substrate was a
proprietary x86 simulator running SPEC traces; ours is a from-scratch
simulator on synthetic traces — DESIGN.md §2); shapes are the target.

**Summary.** Of the 33 paper artifacts, 18 reproduce cleanly (✅), 13
partially (⚠️), and 2 diverge (❌: fig6's single-core gmean ordering and
fig16's headline 4-core WS ordering). Both divergences trace to one
substrate difference analysed in DESIGN.md §7: in our model the rigid
demand-first policy is stronger for accurate-prefetch streaming apps than
in the paper's system, so APS's equal-like mode gives back a few percent
exactly where the paper gains it. All bandwidth (APD traffic savings),
fairness (urgency, ranking), adaptivity (per-class policy selection,
phase tracking), and sensitivity results (row size, cache size, channels,
shared caches, other prefetchers, DDPF/FDP, permutation, runahead)
reproduce in shape.

---
"""


def main(path):
    text = open(path).read()
    # Split into experiment blocks on lines starting with "# ".
    blocks = {}
    cur_id, cur_lines = None, []
    for line in text.splitlines():
        if line.startswith("# ") and " — " in line:
            if cur_id:
                blocks.setdefault(cur_id, "\n".join(cur_lines).strip())
            cur_id = line[2:].split(" — ")[0].strip()
            cur_lines = [line]
        elif line.startswith("EXIT="):
            continue
        else:
            cur_lines.append(line)
    if cur_id:
        blocks.setdefault(cur_id, "\n".join(cur_lines).strip())

    out = [HEADER]
    for exp_id, commentary in COMMENTARY.items():
        out.append(f"## {exp_id}\n")
        out.append(commentary.strip() + "\n")
        if exp_id in blocks:
            out.append("```text\n" + blocks[exp_id] + "\n```\n")
        else:
            out.append("_(not present in this run; regenerate with "
                       f"`repro {exp_id}`)_\n")
    print("\n".join(out))


if __name__ == "__main__":
    main(sys.argv[1])
