#!/usr/bin/env bash
# Determinism gate: the suite's JSONL artifact must be byte-identical
# across worker counts (the unified scheduler emits rows in registry
# order with no timing data), across idle fast-forwarding on vs off
# (jumps must be invisible in results, DESIGN.md §11), and `--resume`
# on a settled artifact must execute zero experiments while reproducing
# it byte for byte.
#
# Runs a smoke-scale subset so the gate stays under a minute; any byte
# difference is a hard failure. No run uses --profile: profiled
# payloads carry wall times and are legitimately nondeterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

SUBSET=(fig1 fig2 tab5 tab6 tab7 cost)
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cargo build --release --workspace --quiet
REPRO=target/release/repro

echo "== determinism: --jobs 1 vs --jobs 8 on ${SUBSET[*]} (smoke scale)"
"$REPRO" --smoke --jobs 1 --no-progress --jsonl "$OUT/j1.jsonl" "${SUBSET[@]}" >/dev/null
"$REPRO" --smoke --jobs 8 --no-progress --jsonl "$OUT/j8.jsonl" "${SUBSET[@]}" >/dev/null
if ! cmp "$OUT/j1.jsonl" "$OUT/j8.jsonl"; then
    echo "FAIL: JSONL differs between --jobs 1 and --jobs 8" >&2
    diff "$OUT/j1.jsonl" "$OUT/j8.jsonl" >&2 || true
    exit 1
fi
echo "   byte-identical ($(wc -c <"$OUT/j1.jsonl") bytes, $(wc -l <"$OUT/j1.jsonl") rows)"

echo "== resume: settled artifact must execute zero experiments"
"$REPRO" --smoke --jobs 8 --no-progress --jsonl "$OUT/full.jsonl" >/dev/null
cp "$OUT/full.jsonl" "$OUT/orig.jsonl"
"$REPRO" --smoke --jobs 8 --no-progress --resume "$OUT/full.jsonl" \
    --summary "$OUT/summary.json" >/dev/null
if ! cmp "$OUT/full.jsonl" "$OUT/orig.jsonl"; then
    echo "FAIL: resumed artifact differs from the original" >&2
    exit 1
fi
if ! grep -q '"ok": 0,' "$OUT/summary.json"; then
    echo "FAIL: resume executed experiments on a settled artifact:" >&2
    cat "$OUT/summary.json" >&2
    exit 1
fi
echo "   zero executions, artifact byte-identical"

echo "== fast-forward: default vs --no-fast-forward on ${SUBSET[*]} (smoke scale)"
"$REPRO" --smoke --jobs 8 --no-progress --jsonl "$OUT/ffon.jsonl" "${SUBSET[@]}" >/dev/null
"$REPRO" --smoke --jobs 8 --no-progress --no-fast-forward \
    --jsonl "$OUT/ffoff.jsonl" "${SUBSET[@]}" >/dev/null
if ! cmp "$OUT/ffon.jsonl" "$OUT/ffoff.jsonl"; then
    echo "FAIL: JSONL differs with fast-forwarding disabled" >&2
    diff "$OUT/ffon.jsonl" "$OUT/ffoff.jsonl" >&2 || true
    exit 1
fi
echo "   byte-identical ($(wc -c <"$OUT/ffon.jsonl") bytes, $(wc -l <"$OUT/ffon.jsonl") rows)"

echo "== determinism_gate.sh: all green"
