#!/usr/bin/env bash
# Determinism gate: the suite's JSONL artifact must be byte-identical
# across worker counts (the unified scheduler emits rows in registry
# order with no timing data) and across all four fast-forward modes
# (off / global / horizon / event — skipped cycles must be invisible in
# results, DESIGN.md §11); `--resume` on a settled artifact must execute zero
# experiments while reproducing it byte for byte, even when the artifact
# was produced under a different fast-forward mode.
#
# Runs a smoke-scale subset so the gate stays under a minute; any byte
# difference is a hard failure. No run uses --profile: profiled
# payloads carry wall times and are legitimately nondeterministic.
#
# Set DET_GATE_OUT to keep the produced artifacts in a known directory
# (CI uploads it on failure); otherwise a temp dir is used and cleaned.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/gate_summary.sh
source "$(dirname "$0")/gate_summary.sh"
gate_init "determinism gate"

SUBSET=(fig1 fig2 tab5 tab6 tab7 cost)
if [ -n "${DET_GATE_OUT:-}" ]; then
    OUT="$DET_GATE_OUT"
    mkdir -p "$OUT"
else
    OUT="$(mktemp -d)"
    GATE_CLEANUP='rm -rf "$OUT"'
fi

gate_section "build"
cargo build --release --workspace --quiet
REPRO=target/release/repro

gate_section "jobs 1 vs jobs 8"
echo "== determinism: --jobs 1 vs --jobs 8 on ${SUBSET[*]} (smoke scale)"
"$REPRO" --smoke --jobs 1 --no-progress --jsonl "$OUT/j1.jsonl" "${SUBSET[@]}" >/dev/null
"$REPRO" --smoke --jobs 8 --no-progress --jsonl "$OUT/j8.jsonl" "${SUBSET[@]}" >/dev/null
if ! cmp "$OUT/j1.jsonl" "$OUT/j8.jsonl"; then
    echo "FAIL: JSONL differs between --jobs 1 and --jobs 8" >&2
    diff "$OUT/j1.jsonl" "$OUT/j8.jsonl" >&2 || true
    exit 1
fi
echo "   byte-identical ($(wc -c <"$OUT/j1.jsonl") bytes, $(wc -l <"$OUT/j1.jsonl") rows)"

gate_section "resume on settled artifact"
echo "== resume: settled artifact must execute zero experiments"
"$REPRO" --smoke --jobs 8 --no-progress --jsonl "$OUT/full.jsonl" >/dev/null
cp "$OUT/full.jsonl" "$OUT/orig.jsonl"
"$REPRO" --smoke --jobs 8 --no-progress --resume "$OUT/full.jsonl" \
    --summary "$OUT/summary.json" >/dev/null
if ! cmp "$OUT/full.jsonl" "$OUT/orig.jsonl"; then
    echo "FAIL: resumed artifact differs from the original" >&2
    exit 1
fi
if ! grep -q '"ok": 0,' "$OUT/summary.json"; then
    echo "FAIL: resume executed experiments on a settled artifact:" >&2
    cat "$OUT/summary.json" >&2
    exit 1
fi
echo "   zero executions, artifact byte-identical"

gate_section "fast-forward four-mode matrix"
echo "== fast-forward: off vs global vs horizon vs event on ${SUBSET[*]} (smoke scale)"
for mode in off global horizon event; do
    "$REPRO" --smoke --jobs 8 --no-progress --fast-forward "$mode" \
        --jsonl "$OUT/ff-$mode.jsonl" "${SUBSET[@]}" >/dev/null
done
for mode in global horizon event; do
    if ! cmp "$OUT/ff-off.jsonl" "$OUT/ff-$mode.jsonl"; then
        echo "FAIL: JSONL differs between --fast-forward off and $mode" >&2
        diff "$OUT/ff-off.jsonl" "$OUT/ff-$mode.jsonl" >&2 || true
        exit 1
    fi
done
echo "   byte-identical across all four modes ($(wc -c <"$OUT/ff-off.jsonl") bytes)"

gate_section "exec planned vs monolithic"
echo "== exec modes: planned vs monolithic on grid/sweep/mechanism experiments"
# The plan/reduce decomposition (DESIGN.md §10) must reproduce the legacy
# monolithic runners byte for byte: same workloads, same arithmetic, same
# JSONL. The subset spans every planned family — single-core grid (fig6),
# multi-core aggregate (fig9, fig16), parameter sweep (fig23, fig24), and
# mechanism sensitivity with its shared alone-unit plan (fig28).
EXEC_SUBSET=(fig6 fig9 fig16 fig23 fig24 fig28)
for exec_mode in planned monolithic; do
    "$REPRO" --smoke --jobs 8 --no-progress --exec "$exec_mode" \
        --jsonl "$OUT/exec-$exec_mode.jsonl" "${EXEC_SUBSET[@]}" >/dev/null
done
if ! cmp "$OUT/exec-planned.jsonl" "$OUT/exec-monolithic.jsonl"; then
    echo "FAIL: JSONL differs between --exec planned and --exec monolithic" >&2
    diff "$OUT/exec-planned.jsonl" "$OUT/exec-monolithic.jsonl" >&2 || true
    exit 1
fi
echo "   byte-identical ($(wc -c <"$OUT/exec-planned.jsonl") bytes, $(wc -l <"$OUT/exec-planned.jsonl") rows)"

gate_section "cross-mode resume"
echo "== resume across modes: off-mode artifact resumed under horizon and event"
for mode in horizon event; do
    "$REPRO" --smoke --jobs 8 --no-progress --fast-forward "$mode" \
        --resume "$OUT/ff-off.jsonl" --jsonl "$OUT/cross-$mode.jsonl" \
        --summary "$OUT/cross-$mode-summary.json" "${SUBSET[@]}" >/dev/null
    if ! cmp "$OUT/cross-$mode.jsonl" "$OUT/ff-off.jsonl"; then
        echo "FAIL: cross-mode resume under $mode did not re-emit settled rows verbatim" >&2
        exit 1
    fi
    if ! grep -q '"ok": 0,' "$OUT/cross-$mode-summary.json"; then
        echo "FAIL: cross-mode resume under $mode executed experiments on a settled artifact:" >&2
        cat "$OUT/cross-$mode-summary.json" >&2
        exit 1
    fi
done
echo "== resume across modes: event-mode artifact resumed under the default mode"
"$REPRO" --smoke --jobs 8 --no-progress \
    --resume "$OUT/ff-event.jsonl" --jsonl "$OUT/cross-back.jsonl" \
    --summary "$OUT/cross-back-summary.json" "${SUBSET[@]}" >/dev/null
if ! cmp "$OUT/cross-back.jsonl" "$OUT/ff-off.jsonl"; then
    echo "FAIL: event-mode artifact was not re-emitted verbatim under the default mode" >&2
    exit 1
fi
if ! grep -q '"ok": 0,' "$OUT/cross-back-summary.json"; then
    echo "FAIL: event-artifact resume executed experiments on a settled artifact:" >&2
    cat "$OUT/cross-back-summary.json" >&2
    exit 1
fi
echo "   zero executions, artifacts byte-identical in both directions"

gate_section "store cold vs warm vs none"
echo "== store: cold vs warm vs no-store byte identity on planned subset"
# The persistent unit store (DESIGN.md §12) must be invisible in results:
# a cold-store run (every unit computed and written back), a warm-store
# rerun (every unit loaded, zero computed), and a storeless run must
# produce byte-identical JSONL. The warm run must also report misses=0 on
# the stderr telemetry line and execute zero simulation units.
STORE_SUBSET=(fig6 tab5 tab7 fig8)
STORE_DIR="$OUT/store"
rm -rf "$STORE_DIR"
"$REPRO" --smoke --jobs 8 --no-progress --exec planned --store "$STORE_DIR" \
    --jsonl "$OUT/store-cold.jsonl" "${STORE_SUBSET[@]}" >/dev/null
"$REPRO" --smoke --jobs 8 --no-progress --exec planned --store "$STORE_DIR" \
    --jsonl "$OUT/store-warm.jsonl" --summary "$OUT/store-warm-summary.json" \
    "${STORE_SUBSET[@]}" >/dev/null 2>"$OUT/store-warm-stderr.txt"
"$REPRO" --smoke --jobs 8 --no-progress --exec planned \
    --jsonl "$OUT/store-none.jsonl" "${STORE_SUBSET[@]}" >/dev/null
for variant in warm none; do
    if ! cmp "$OUT/store-cold.jsonl" "$OUT/store-$variant.jsonl"; then
        echo "FAIL: store-$variant.jsonl differs from the cold-store artifact" >&2
        diff "$OUT/store-cold.jsonl" "$OUT/store-$variant.jsonl" >&2 || true
        exit 1
    fi
done
if ! grep -q '^store: hits=[0-9]* misses=0 ' "$OUT/store-warm-stderr.txt"; then
    echo "FAIL: warm-store run reported misses:" >&2
    grep '^store:' "$OUT/store-warm-stderr.txt" >&2 || true
    exit 1
fi
if ! grep -q '"subjobs_executed": 0,' "$OUT/store-warm-summary.json"; then
    echo "FAIL: warm-store run executed simulation units:" >&2
    cat "$OUT/store-warm-summary.json" >&2
    exit 1
fi
echo "   cold == warm == no-store; warm run: misses=0, zero units executed"

echo "== determinism_gate.sh: all green"
