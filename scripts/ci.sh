#!/usr/bin/env bash
# Local CI gate: shellcheck, formatting, lints, release build, docs, the
# full test suite, and the EXPERIMENTS.md drift check. Everything runs
# offline (external deps are vendored; see vendor/README.md). Each step
# prints its elapsed seconds, and the same per-step timings land in the
# workflow step summary ($GITHUB_STEP_SUMMARY) via gate_summary.sh.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/gate_summary.sh
source "$(dirname "$0")/gate_summary.sh"
gate_init "ci gate"

# Runs one gate step and prints its wall time.
step() {
    local name=$1
    shift
    gate_section "$name"
    echo "== $name"
    local t0=$SECONDS
    "$@"
    echo "   -- ${name}: $((SECONDS - t0))s"
}

doc_step() {
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
}

if command -v shellcheck >/dev/null 2>&1; then
    step "shellcheck scripts/*.sh" shellcheck scripts/*.sh
else
    # Report the skip explicitly — a missing linter must never read as a
    # silent pass in the summary table.
    gate_skip "shellcheck scripts/*.sh" "shellcheck not installed (offline container)"
    echo "== shellcheck scripts/*.sh: skipped (shellcheck not installed)"
fi
step "cargo fmt --check" cargo fmt --check
step "cargo clippy --workspace --all-targets -- -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings
step "cargo build --release --workspace" cargo build --release --workspace
step "cargo doc --no-deps (warnings denied)" doc_step
step "cargo test -q" cargo test -q
step "cargo test --doc" cargo test --doc -q
step "EXPERIMENTS.md drift check" \
    python3 scripts/make_experiments_md.py --check repro_full.jsonl

echo "== ci.sh: all green in ${SECONDS}s"
