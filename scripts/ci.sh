#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, docs, the full test
# suite, and the EXPERIMENTS.md drift check. Everything runs offline
# (external deps are vendored; see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test -q"
cargo test -q

echo "== cargo test --doc"
cargo test --doc -q

echo "== EXPERIMENTS.md drift check"
python3 scripts/make_experiments_md.py --check repro_full.jsonl

echo "== ci.sh: all green"
