#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test suite.
# Everything runs offline (external deps are vendored; see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== ci.sh: all green"
