#!/usr/bin/env bash
# Local CI gate: shellcheck, formatting, lints, release build, docs, the
# full test suite, and the EXPERIMENTS.md drift check. Everything runs
# offline (external deps are vendored; see vendor/README.md). Each step
# prints its elapsed seconds so CI logs show where the time budget goes.
set -euo pipefail
cd "$(dirname "$0")/.."

total_start=$SECONDS

# Runs one gate step and prints its wall time.
step() {
    local name=$1
    shift
    echo "== $name"
    local t0=$SECONDS
    "$@"
    echo "   -- ${name}: $((SECONDS - t0))s"
}

shellcheck_step() {
    if command -v shellcheck >/dev/null 2>&1; then
        shellcheck scripts/*.sh
    else
        echo "   shellcheck not installed; skipping (offline container)"
    fi
}

doc_step() {
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
}

step "shellcheck scripts/*.sh" shellcheck_step
step "cargo fmt --check" cargo fmt --check
step "cargo clippy --workspace --all-targets -- -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings
step "cargo build --release --workspace" cargo build --release --workspace
step "cargo doc --no-deps (warnings denied)" doc_step
step "cargo test -q" cargo test -q
step "cargo test --doc" cargo test --doc -q
step "EXPERIMENTS.md drift check" \
    python3 scripts/make_experiments_md.py --check repro_full.jsonl

echo "== ci.sh: all green in $((SECONDS - total_start))s"
