//! Offline stand-in for the `serde` crate.
//!
//! The container this repo builds in has no network and no crates-io cache,
//! so the real `serde` cannot be fetched. This crate keeps the public surface
//! the workspace actually uses — `derive(Serialize, Deserialize)` plus the
//! `serde_json` entry points — on top of a single concrete data model:
//! [`Value`], a JSON tree. That is all the workspace needs (every
//! serialization in the repo is to/from JSON), and it keeps the shim small
//! enough to audit (`vendor/README.md` has the full inventory of
//! differences from the real crates).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value: the single data model of this shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (unsigned, signed, or floating).
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Insertion order is preserved so struct fields serialize
    /// in declaration order, deterministically.
    Object(Vec<(String, Value)>),
}

/// A JSON number, keeping full `u64`/`i64` precision (an `f64`-only model
/// would corrupt large addresses and seeds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::U(u)) => Some(*u as f64),
            Value::Num(Number::I(i)) => Some(*i as f64),
            Value::Num(Number::F(f)) => Some(*f),
            _ => None,
        }
    }

    /// Looks up a key if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a path-less message, matching how the workspace
/// consumes errors (formatted into CLI diagnostics).
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds a "wrong shape" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        let got = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Num(_) => "a number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        DeError(format!("expected {what}, got {got}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` to the JSON data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` from the JSON data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Resolves a missing struct field the way real serde does: `Option` fields
/// fall back to `None`; anything else is a hard "missing field" error.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, DeError> {
    T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Num(Number::U(u)) => *u,
                    Value::Num(Number::I(i)) if *i >= 0 => *i as u64,
                    Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::expected("an unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::Num(Number::U(i as u64)) } else { Value::Num(Number::I(i)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Num(Number::I(i)) => *i,
                    Value::Num(Number::U(u)) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Num(Number::F(f)) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::expected("an integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("a number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("an array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_value(v)?;
        let len = vec.len();
        vec.try_into()
            .map_err(|_| DeError(format!("expected an array of {N} elements, got {len}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("an object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$(stringify!($t)),+].len();
                let a = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
                if a.len() != LEN {
                    return Err(DeError(format!("expected a {LEN}-tuple, got {} elements", a.len())));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_none_is_null_and_missing_field_fallback() {
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(missing_field::<Option<u64>>("x"), Ok(None));
        assert!(missing_field::<u64>("x").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(String::from("a"), vec![1.0f64, 2.0])];
        let round = Vec::<(String, Vec<f64>)>::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
    }
}
