//! Offline stand-in for `serde_json`: a hand-rolled JSON parser and printer
//! over the `serde` shim's [`Value`] data model.
//!
//! Output notes (deliberate, deterministic divergences from the real
//! `serde_json`):
//! - floats print via Rust's shortest round-trip formatting, so `1.0`
//!   prints as `1` (still valid JSON, still round-trips exactly);
//! - non-finite floats print as `null` (same as real serde_json).

use serde::{Deserialize, Serialize};
pub use serde::{Number, Value};

use std::fmt;

/// Parse or shape error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes to compact JSON (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (2-space indent, serde_json style).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(|e| Error(e.0))
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    from_value(&value)
}

/// Parses JSON text into the [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Appends `value` as JSON to `out`. `indent = None` is compact.
pub fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Num(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Num(Number::F(f)) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.i))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.i) == Some(&b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.i) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.bytes.get(self.i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map them to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    s.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.bytes.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(self.bytes.get(self.i), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.i) == Some(&b'.') {
            is_float = true;
            self.i += 1;
            while matches!(self.bytes.get(self.i), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.bytes.get(self.i), Some(b'e' | b'E')) {
            is_float = true;
            self.i += 1;
            if matches!(self.bytes.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.bytes.get(self.i), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_round_trip() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":null},"e":true}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, text);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = parse(r#"{"a":[1],"b":{}}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let big = u64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v, Value::Num(Number::U(big)));
        let neg = parse("-42").unwrap();
        assert_eq!(neg, Value::Num(Number::I(-42)));
    }

    #[test]
    fn typed_round_trip() {
        let rows = vec![("a".to_string(), vec![1.0f64, 2.25])];
        let text = to_string(&rows).unwrap();
        assert_eq!(text, r#"[["a",[1,2.25]]]"#);
        let back: Vec<(String, Vec<f64>)> = from_str(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\u{1}\n");
        assert_eq!(out, "\"a\\\"b\\\\c\\u0001\\n\"");
    }
}
