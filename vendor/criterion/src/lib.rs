//! Offline stand-in for `criterion`.
//!
//! Provides the API surface `crates/bench/benches/microbench.rs` uses —
//! `Criterion`, benchmark groups, `iter`/`iter_batched`, `BenchmarkId`,
//! `Throughput`, the `criterion_group!`/`criterion_main!` macros — backed
//! by a deliberately simple engine: one calibration pass to size batches,
//! then timed batches until a wall-clock target is reached, reporting
//! min/median/p95 ns/iter over the per-batch samples (a single mean hides
//! scheduler noise and warm-up drift; the spread makes unstable numbers
//! visible). No outlier rejection, no HTML reports; good enough to compare
//! hot paths locally and to keep `cargo bench` compiling and running
//! offline.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Per-unit throughput annotation (accepted, not currently reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (the shim uses one size).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup state.
    SmallInput,
    /// Large per-iteration setup state.
    LargeInput,
}

/// A benchmark identifier: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function + parameter id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates throughput (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Adjusts sample count (ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_bench_id()), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_bench_id()), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API parity).
    pub fn finish(self) {}
}

/// Anything usable as a benchmark id.
pub trait IntoBenchId {
    /// Renders the id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    /// Per-batch ns/iter samples, in measurement order.
    samples: Vec<f64>,
}

const TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.total += elapsed;
        self.iters += iters;
        self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
    }

    /// Times `f` repeatedly until the time target is reached; each timed
    /// batch contributes one ns/iter sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One calibration pass to size batches, then timed batches.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (TARGET.as_nanos() / 50 / once.as_nanos()).clamp(1, 100_000) as u64;
        while self.total < TARGET {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.record(start.elapsed(), batch);
        }
    }

    /// Times `routine` over fresh state from `setup`, excluding setup
    /// time; each routine call contributes one sample.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        while self.total < TARGET {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.record(start.elapsed(), 1);
        }
    }
}

/// Sorted-sample quantile by nearest-rank on `q * (n - 1)`.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        samples: Vec::new(),
    };
    f(&mut b);
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted.first().copied().unwrap_or(0.0);
    let median = quantile(&sorted, 0.5);
    let p95 = quantile(&sorted, 0.95);
    println!(
        "bench {name:<55} min {min:>12.1}  med {median:>12.1}  p95 {p95:>12.1} ns/iter \
         ({} samples, {} iters)",
        sorted.len(),
        b.iters
    );
}

/// Collects benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
