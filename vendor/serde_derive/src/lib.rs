//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the item token stream (no `syn`/`quote` — those live on
//! crates.io too) and emits `impl serde::Serialize` / `impl
//! serde::Deserialize` against the shim's `Value` data model. Supports
//! exactly the shapes this workspace uses:
//!
//! - structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]`, separately or combined)
//! - tuple structs (newtypes serialize transparently, wider ones as arrays)
//! - enums with unit variants (serialized as the variant-name string)
//! - enums with struct variants (externally tagged, serde-style)
//!
//! Anything else — generics, lifetimes, tuple enum variants, other
//! `#[serde(...)]` attributes — is rejected with a `compile_error!` so a
//! future change can't silently serialize wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    has_default: bool,
    /// Path of a `fn(&T) -> bool` predicate from
    /// `#[serde(skip_serializing_if = "...")]`: when it returns true the
    /// field is omitted from the serialized object (deserialization then
    /// relies on `default`, exactly like upstream serde).
    skip_if: Option<String>,
}

/// Parsed `#[serde(...)]` field attributes.
#[derive(Default)]
struct FieldAttrs {
    has_default: bool,
    skip_if: Option<String>,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>, // None = unit, Some = struct variant
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    match parse(&toks) {
        Ok((name, shape)) => {
            let code = match dir {
                Direction::Serialize => gen_serialize(&name, &shape),
                Direction::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

struct Cursor<'a> {
    toks: &'a [TokenTree],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<&'a TokenTree> {
        let t = self.toks.get(self.i);
        self.i += t.is_some() as usize;
        t
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == s)
    }

    /// Skips attributes, collecting the supported `#[serde(...)]` ones.
    fn skip_attrs(&mut self) -> Result<FieldAttrs, String> {
        let mut attrs = FieldAttrs::default();
        while self.is_punct('#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                return Err("expected [...] after #".into());
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    let Some(TokenTree::Group(args)) = inner.get(1) else {
                        return Err("unsupported bare #[serde] attribute".into());
                    };
                    let args = args.stream().to_string();
                    // Quoted predicate paths never contain commas, so a
                    // textual split is safe for the attributes we accept.
                    for part in args.split(',') {
                        let part = part.trim();
                        if part.is_empty() || part == "default" {
                            attrs.has_default |= part == "default";
                            continue;
                        }
                        let path = part
                            .strip_prefix("skip_serializing_if")
                            .map(|r| r.trim_start())
                            .and_then(|r| r.strip_prefix('='))
                            .map(|r| r.trim())
                            .and_then(|r| r.strip_prefix('"'))
                            .and_then(|r| r.strip_suffix('"'));
                        match path {
                            Some(p) => attrs.skip_if = Some(p.to_string()),
                            None => return Err(format!("unsupported #[serde({args})] attribute")),
                        }
                    }
                }
            }
        }
        Ok(attrs)
    }

    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }
}

fn parse(toks: &[TokenTree]) -> Result<(String, Shape), String> {
    let mut c = Cursor { toks, i: 0 };
    c.skip_attrs()?;
    c.skip_visibility();
    let kind = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if c.is_punct('<') {
        return Err(format!(
            "generic type {name} is unsupported by the serde shim"
        ));
    }
    match (kind.as_str(), c.peek()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok((name, Shape::NamedStruct(parse_named_fields(&body)?)))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok((name, Shape::TupleStruct(count_tuple_fields(&body))))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok((name, Shape::Enum(parse_variants(&body)?)))
        }
        (k, t) => Err(format!("unsupported item shape: {k} followed by {t:?}")),
    }
}

fn parse_named_fields(toks: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut c = Cursor { toks, i: 0 };
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = c.skip_attrs()?;
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        if !c.is_punct(':') {
            return Err(format!("expected `:` after field {name}"));
        }
        c.next();
        // Skip the type: everything up to a top-level comma. Generic
        // argument lists nest via `<`, which arrives as loose puncts, so
        // track angle-bracket depth; (), [] and {} arrive pre-grouped.
        let mut angle: i32 = 0;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            c.next();
        }
        if c.is_punct(',') {
            c.next();
        }
        fields.push(Field {
            name,
            has_default: attrs.has_default,
            skip_if: attrs.skip_if,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    let mut angle: i32 = 0;
    let mut commas = 0;
    let mut trailing_comma = true; // empty stream counts as zero fields
    for t in toks {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if toks.is_empty() {
        0
    } else {
        commas + 1 - trailing_comma as usize
    }
}

fn parse_variants(toks: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut c = Cursor { toks, i: 0 };
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs()?;
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                c.next();
                Some(parse_named_fields(&body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple enum variant {name} is unsupported by the serde shim"
                ));
            }
            _ => None,
        };
        // Skip an explicit discriminant (`= expr`) up to the separator.
        while c.peek().is_some() && !c.is_punct(',') {
            c.next();
        }
        if c.is_punct(',') {
            c.next();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let push = format!(
                        "__fields.push(({:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{})));",
                        f.name, f.name
                    );
                    match &f.skip_if {
                        Some(path) => format!("if !{path}(&self.{}) {{ {push} }}", f.name),
                        None => push,
                    }
                })
                .collect();
            format!(
                "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, \
                 ::serde::Value)> = ::std::vec::Vec::new(); {pushes} \
                 ::serde::Value::Object(__fields) }}"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(vec![{entries}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binds: String = fields.iter().map(|f| format!("{},", f.name)).collect();
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                let push = format!(
                                    "__fields.push(({:?}.to_string(), \
                                     ::serde::Serialize::to_value({})));",
                                    f.name, f.name
                                );
                                match &f.skip_if {
                                    Some(path) => {
                                        format!("if !{path}({}) {{ {push} }}", f.name)
                                    }
                                    None => push,
                                }
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{ \
                             let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new(); {pushes} \
                             ::serde::Value::Object(vec![\
                             ({v:?}.to_string(), ::serde::Value::Object(__fields))]) }},",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_field_exprs(fields: &[Field], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fallback = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("::serde::missing_field({:?})?", f.name)
            };
            format!(
                "{fname}: match {source}.get({fname:?}) {{ \
                 Some(x) => ::serde::Deserialize::from_value(x)?, None => {fallback} }},",
                fname = f.name
            )
        })
        .collect()
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries = named_field_exprs(fields, "v");
            format!(
                "if v.as_object().is_none() {{ \
                 return Err(::serde::DeError::expected(\"an object\", v)); }}\n\
                 Ok({name} {{ {entries} }})"
            )
        }
        Shape::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?,"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"an array\", v))?;\n\
                 if a.len() != {n} {{ return Err(::serde::DeError(format!(\
                 \"expected {n} elements for {name}, got {{}}\", a.len()))); }}\n\
                 Ok({name}({entries}))"
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("{n:?} => return Ok({name}::{n}),", n = v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|f| (v.name.as_str(), f)))
                .map(|(vname, fields)| {
                    let entries = named_field_exprs(fields, "inner");
                    format!("{vname:?} => return Ok({name}::{vname} {{ {entries} }}),")
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                 match s {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let Some(obj) = v.as_object() {{\n\
                 if obj.len() == 1 {{\n\
                 let (tag, inner) = &obj[0];\n\
                 match tag.as_str() {{ {data_arms} _ => {{}} }}\n\
                 }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"a {name} variant\", v))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
