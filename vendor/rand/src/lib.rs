//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the algorithms the real crate uses for the surface
//! this workspace touches, so seeded streams are stable and the committed
//! experiment artifacts (regenerated with this stack) stay reproducible:
//!
//! - `SmallRng` = xoshiro256++ with `seed_from_u64` via SplitMix64
//!   (rand 0.8 on 64-bit platforms);
//! - `Rng::gen_range` over integer ranges = Lemire widening-multiply with
//!   rejection sampling, matching `UniformInt::sample_single`;
//! - `Rng::gen_bool(p)` = Bernoulli via a 64-bit fixed-point threshold;
//! - `Rng::gen::<f64>()` = 53-bit mantissa scaling (`Standard`).
//!
//! The known-answer tests at the bottom pin the exact output streams.

/// Low-level RNG interface (the subset of `rand_core::RngCore` used here).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable RNG constructors (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a single `u64` (implementations override to match the
    /// real crate's per-RNG seeding).
    fn seed_from_u64(state: u64) -> Self;
}

/// Namespaced RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    /// A small, fast RNG: xoshiro256++ exactly as in `rand` 0.8 on 64-bit
    /// platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                return crate::SeedableRng::seed_from_u64(0);
            }
            SmallRng { s }
        }

        /// SplitMix64 expansion, matching rand 0.8's
        /// `Xoshiro256PlusPlus::seed_from_u64`.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for word in s.iter_mut() {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro256++ have linear dependencies; rand
            // takes the upper half.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A type that `Rng::gen` can produce (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// 53-bit precision scaling, matching rand 0.8's `Standard` for `f64`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: one bit from the top of next_u32's output space.
        (rng.next_u32() as i32) < 0
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_64 {
    ($($ty:ty => $uns:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            /// Lemire widening-multiply rejection sampling, matching rand
            /// 0.8's `UniformInt::sample_single` for 64-bit-wide types.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end.wrapping_sub(self.start)) as $uns as u64;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128).wrapping_mul(range as u128);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $uns as $ty);
                    }
                }
            }
        }
    )*};
}
impl_range_64!(u64 => u64, i64 => u64, usize => u64);

macro_rules! impl_range_32 {
    ($($ty:ty => $uns:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            /// Same scheme at 32-bit width (rand uses the type's own width
            /// for `u32`/`i32`).
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end.wrapping_sub(self.start)) as $uns as u32;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u32();
                    let m = (v as u64).wrapping_mul(range as u64);
                    let (hi, lo) = ((m >> 32) as u32, m as u32);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $uns as $ty);
                    }
                }
            }
        }
    )*};
}
impl_range_32!(u32 => u32, i32 => u32);

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns true with probability `p`, matching rand 0.8's `Bernoulli`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        if p == 1.0 {
            // rand's ALWAYS_TRUE marker; still consumes one draw.
            self.next_u64();
            return true;
        }
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Known-answer test pinning the xoshiro256++/SplitMix64 stream to the
    /// real `rand` 0.8 output for `SmallRng::seed_from_u64(1)`.
    #[test]
    fn small_rng_stream_matches_rand_0_8() {
        // SplitMix64(1) expands to this xoshiro256++ state.
        let mix = |state: &mut u64| {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut z = 1u64;
        let s: Vec<u64> = (0..4).map(|_| mix(&mut z)).collect();
        // First output = rotl(s0 + s3, 23) + s0 by construction.
        let expect0 = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(rng.next_u64(), expect0);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(10u64..11);
            assert_eq!(w, 10);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2300..2700).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
