//! Offline stand-in for `proptest`.
//!
//! Keeps the macro-level API the workspace's property tests are written
//! against (`proptest!`, `prop_assert*`, `any`, ranges and tuples as
//! strategies, `prop::collection::vec`, `prop_oneof!`, `Just`,
//! `.prop_map(..)`, `ProptestConfig::with_cases(..)`) on a much simpler
//! engine: each test runs `cases` deterministic seeded random cases with
//! **no shrinking** — a failure reports the case number and seed instead of
//! a minimized input. Failures stay reproducible because the seed sequence
//! is fixed per test.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies.
pub type TestRng = SmallRng;

/// Per-test configuration (subset of proptest's `Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; this shim's engine does no shrinking so
        // failures surface raw inputs — the smaller default keeps suite
        // runtime close to the original.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
            self.gen_value(rng)
        }))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — full-range generation for primitives.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u32..2) == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: arbitrary bit patterns (NaN/inf) make poor
        // default property inputs.
        let v: f64 = rng.gen();
        (v - 0.5) * 2e12
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let unit: f64 = rng.gen();
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// `prop::` namespace, mirroring the real crate's module re-export.
pub mod strategy_modules {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Size bound for [`vec()`]: a range or an exact count.
        pub trait SizeRange {
            /// Draws a length.
            fn draw(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for std::ops::Range<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(*self.start()..*self.end() + 1)
            }
        }

        impl SizeRange for usize {
            fn draw(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        /// Generates `Vec`s whose length is drawn from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.draw(rng);
                (0..n).map(|_| self.element.gen_value(rng)).collect()
            }
        }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use super::strategy_modules as prop;
    pub use super::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::OneOf(arms)
    }};
}

/// Strategy produced by [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].gen_value(rng)
    }
}

/// Runs `cases` seeded cases of one property (called by [`proptest!`]).
pub fn run_cases(test_name: &str, cases: u32, mut case: impl FnMut(&mut TestRng)) {
    for i in 0..cases {
        // Per-case seeds are fixed and name-independent so a failure
        // reported as "case i" reproduces by running the same binary again.
        let seed = 0x5eed_0000_0000_0000u64 ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property {test_name} failed at case {i} (seed {seed:#x}): {msg}");
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] many seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), config.cases, |rng| {
                    let ($($arg,)+) = ($($crate::Strategy::gen_value(&$strategy, rng),)+);
                    $body
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_and_map_compose() {
        let strategy = prop_oneof![(0u64..10).prop_map(|v| v * 2), Just(1000u64),];
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(9);
        let mut saw_even = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match strategy.gen_value(&mut rng) {
                1000 => saw_just = true,
                v if v < 20 && v % 2 == 0 => saw_even = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(saw_even && saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases(x in 0u64..100, v in prop::collection::vec(0u32..10, 1..5)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|e| *e < 10));
        }
    }
}
