//! Offline stand-in for `proptest`.
//!
//! Keeps the macro-level API the workspace's property tests are written
//! against (`proptest!`, `prop_assert*`, `any`, ranges and tuples as
//! strategies, `prop::collection::vec`, `prop_oneof!`, `Just`,
//! `.prop_map(..)`, `ProptestConfig::with_cases(..)`) on a much simpler
//! engine: each test runs `cases` deterministic seeded random cases.
//! Failures stay reproducible because the seed sequence is fixed per test.
//!
//! # Shrinking
//!
//! When a case fails, each component of the generated input tuple is
//! independently binary-searched toward its origin (zero, `false`, the
//! empty `Vec`) while the other components are held fixed, keeping only
//! candidates on which the test still fails. The minimized input is
//! reported alongside the original input and the case seed.
//! Scalars ([`ShrinkValue`] impls: integers, `bool`, `f64`, `Vec` by
//! prefix length, tuples elementwise) shrink; any other input type is
//! passed through unshrunk.
//!
//! Shrinking is *strategy-aware*: every candidate is filtered through
//! [`Strategy::is_valid`], so a minimized value never lies outside the
//! strategy that generated it (`500..1000` minimizes toward `500`, not
//! `0`). Ranges, tuples, `prop::collection::vec`, `prop_oneof!` arms and
//! boxed strategies all constrain their candidates; strategies that
//! cannot check membership (`prop_map`, `Just`, `any`) accept every
//! candidate, matching the old unconstrained behaviour.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies.
pub type TestRng = SmallRng;

/// Per-test configuration (subset of proptest's `Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; this shim's engine does no shrinking so
        // failures surface raw inputs — the smaller default keeps suite
        // runtime close to the original.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Whether `value` could have been produced by this strategy.
    ///
    /// Shrinking filters every candidate through this hook so minimized
    /// inputs stay inside the strategy's domain. The default accepts
    /// everything — correct for full-range strategies (`any`) and the
    /// only safe answer for non-invertible ones (`prop_map`).
    fn is_valid(&self, _value: &Self::Value) -> bool {
        true
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Object-safe view of a [`Strategy`], backing [`BoxedStrategy`] so type
/// erasure preserves both generation and the [`Strategy::is_valid`] hook.
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
    fn valid_dyn(&self, value: &T) -> bool;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }

    fn valid_dyn(&self, value: &S::Value) -> bool {
        self.is_valid(value)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }

    fn is_valid(&self, value: &T) -> bool {
        self.0.valid_dyn(value)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — full-range generation for primitives.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u32..2) == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: arbitrary bit patterns (NaN/inf) make poor
        // default property inputs.
        let v: f64 = rng.gen();
        (v - 0.5) * 2e12
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn is_valid(&self, value: &$t) -> bool {
                self.contains(value)
            }
        }
    )*};
}
range_strategy!(u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let unit: f64 = rng.gen();
        self.start + unit * (self.end - self.start)
    }

    fn is_valid(&self, value: &f64) -> bool {
        self.contains(value)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }

            fn is_valid(&self, value: &Self::Value) -> bool {
                $(self.$idx.is_valid(&value.$idx))&&+
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// `prop::` namespace, mirroring the real crate's module re-export.
pub mod strategy_modules {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Size bound for [`vec()`]: a range or an exact count.
        pub trait SizeRange {
            /// Draws a length.
            fn draw(&self, rng: &mut TestRng) -> usize;

            /// Whether `len` is an admissible length (used by shrinking).
            fn contains(&self, len: usize) -> bool;
        }

        impl SizeRange for std::ops::Range<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }

            fn contains(&self, len: usize) -> bool {
                std::ops::RangeBounds::contains(self, &len)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(*self.start()..*self.end() + 1)
            }

            fn contains(&self, len: usize) -> bool {
                std::ops::RangeBounds::contains(self, &len)
            }
        }

        impl SizeRange for usize {
            fn draw(&self, _rng: &mut TestRng) -> usize {
                *self
            }

            fn contains(&self, len: usize) -> bool {
                len == *self
            }
        }

        /// Generates `Vec`s whose length is drawn from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.draw(rng);
                (0..n).map(|_| self.element.gen_value(rng)).collect()
            }

            fn is_valid(&self, value: &Vec<S::Value>) -> bool {
                self.size.contains(value.len())
                    && value.iter().all(|element| self.element.is_valid(element))
            }
        }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use super::strategy_modules as prop;
    pub use super::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::OneOf(arms)
    }};
}

/// Strategy produced by [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].gen_value(rng)
    }

    fn is_valid(&self, value: &T) -> bool {
        self.0.iter().any(|arm| arm.is_valid(value))
    }
}

/// A value that can be minimized by binary search toward an "origin"
/// (zero-like) value.
///
/// `midpoint(lo, hi)` must return a value strictly between `lo` and `hi`
/// in shrink order, or `None` once the two are adjacent — that is what
/// guarantees the search terminates.
pub trait ShrinkValue: Clone {
    /// The smallest value in shrink order (0, `false`, empty).
    fn origin() -> Self;

    /// A value strictly between `lo` and `hi`, or `None` when adjacent.
    fn midpoint(lo: &Self, hi: &Self) -> Option<Self>;
}

macro_rules! shrink_int {
    ($($t:ty),*) => {$(
        impl ShrinkValue for $t {
            fn origin() -> Self {
                0
            }

            fn midpoint(lo: &Self, hi: &Self) -> Option<Self> {
                let (l, h) = (*lo as i128, *hi as i128);
                let m = l + (h - l) / 2;
                if m == l || m == h {
                    None
                } else {
                    Some(m as $t)
                }
            }
        }
    )*};
}
shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ShrinkValue for bool {
    fn origin() -> Self {
        false
    }

    fn midpoint(_lo: &Self, _hi: &Self) -> Option<Self> {
        None
    }
}

impl ShrinkValue for f64 {
    fn origin() -> Self {
        0.0
    }

    fn midpoint(lo: &Self, hi: &Self) -> Option<Self> {
        let m = lo + (hi - lo) / 2.0;
        if !m.is_finite() || m == *lo || m == *hi {
            None
        } else {
            Some(m)
        }
    }
}

/// `Vec`s shrink by length only: candidates are prefixes of the failing
/// vector (elements are not shrunk individually, so any `Clone` element
/// type works).
impl<T: Clone> ShrinkValue for Vec<T> {
    fn origin() -> Self {
        Vec::new()
    }

    fn midpoint(lo: &Self, hi: &Self) -> Option<Self> {
        let (l, h) = (lo.len(), hi.len());
        let m = l + (h - l) / 2;
        if m == l || m == h {
            None
        } else {
            Some(hi[..m].to_vec())
        }
    }
}

macro_rules! shrink_value_tuple {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        /// Tuples shrink elementwise; `midpoint` halves every component
        /// that still can move (components already adjacent keep `hi`'s
        /// value) and is exhausted when none can.
        impl<$($s: ShrinkValue),+> ShrinkValue for ($($s,)+) {
            fn origin() -> Self {
                ($($s::origin(),)+)
            }

            fn midpoint(lo: &Self, hi: &Self) -> Option<Self> {
                let mut moved = false;
                let mid = ($(
                    match $s::midpoint(&lo.$idx, &hi.$idx) {
                        Some(m) => {
                            moved = true;
                            m
                        }
                        None => hi.$idx.clone(),
                    },
                )+);
                moved.then_some(mid)
            }
        }
    )*};
}
shrink_value_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Minimizes one known-failing component: tries the origin outright, then
/// binary-searches between the largest known-passing and smallest
/// known-failing value. Returns a value on which `fails` is true.
pub fn shrink_scalar<T: ShrinkValue>(current: &T, fails: &mut dyn FnMut(&T) -> bool) -> T {
    let origin = T::origin();
    if fails(&origin) {
        return origin;
    }
    let mut lo = origin; // passes
    let mut hi = current.clone(); // fails
                                  // `midpoint` contracts [lo, hi] every step, but cap the loop anyway so
                                  // a misbehaving impl cannot hang a failing test.
    for _ in 0..256 {
        match T::midpoint(&lo, &hi) {
            None => break,
            Some(mid) => {
                if fails(&mid) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        }
    }
    hi
}

/// The input tuple of a property test, minimized componentwise.
pub trait ShrinkTuple: Clone {
    /// Minimizes each component in turn (others held fixed), keeping only
    /// candidates on which `fails` stays true. `self` must be failing.
    fn shrink_with(&self, fails: &mut dyn FnMut(&Self) -> bool) -> Self;
}

macro_rules! shrink_tuple_impl {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: ShrinkValue),+> ShrinkTuple for ($($s,)+) {
            fn shrink_with(&self, fails: &mut dyn FnMut(&Self) -> bool) -> Self {
                let mut cur = self.clone();
                $(
                    cur.$idx = shrink_scalar(&cur.$idx, &mut |candidate| {
                        let mut probe = cur.clone();
                        probe.$idx = candidate.clone();
                        fails(&probe)
                    });
                )+
                cur
            }
        }
    )*};
}
shrink_tuple_impl! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Autoref-specialization receiver: `(&ShrinkDispatch(&vals)).padc_shrink(..)`
/// resolves to real shrinking when the input tuple implements
/// [`ShrinkTuple`] and to a pass-through otherwise, so `proptest!` can emit
/// one code path for every input type.
pub struct ShrinkDispatch<'a, V>(pub &'a V);

/// Shrinking dispatch arm for inputs that implement [`ShrinkTuple`].
pub trait ShrinkSpecialized {
    /// The input tuple type.
    type Out;

    /// Minimizes the failing input.
    fn padc_shrink(&self, fails: &mut dyn FnMut(&Self::Out) -> bool) -> Self::Out;
}

impl<V: ShrinkTuple> ShrinkSpecialized for ShrinkDispatch<'_, V> {
    type Out = V;

    fn padc_shrink(&self, fails: &mut dyn FnMut(&V) -> bool) -> V {
        self.0.shrink_with(fails)
    }
}

/// Pass-through dispatch arm for unshrinkable inputs (method-resolution
/// fallback: requires an extra autoref, so [`ShrinkSpecialized`] wins
/// whenever it applies).
pub trait ShrinkFallback {
    /// The input tuple type.
    type Out;

    /// Returns the input unchanged.
    fn padc_shrink(&self, fails: &mut dyn FnMut(&Self::Out) -> bool) -> Self::Out;
}

impl<V: Clone> ShrinkFallback for &ShrinkDispatch<'_, V> {
    type Out = V;

    fn padc_shrink(&self, _fails: &mut dyn FnMut(&V) -> bool) -> V {
        self.0.clone()
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> &str {
    panic
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| panic.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic>")
}

/// Runs `cases` seeded cases of one property; on failure, minimizes the
/// input via `shrink` and panics reporting the case number, seed, original
/// input, and minimized input (called by [`proptest!`]).
pub fn run_cases_shrink<V: Clone + std::fmt::Debug>(
    test_name: &str,
    cases: u32,
    mut gen: impl FnMut(&mut TestRng) -> V,
    test: impl Fn(&V),
    shrink: impl Fn(&V, &mut dyn FnMut(&V) -> bool) -> V,
) {
    for i in 0..cases {
        // Per-case seeds are fixed and name-independent so a failure
        // reported as "case i" reproduces by running the same binary again.
        let seed = 0x5eed_0000_0000_0000u64 ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        let vals = gen(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(&vals)));
        if let Err(panic) = result {
            // Candidate probes panic on purpose; silence the default hook's
            // per-probe backtrace spam while minimizing.
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let minimized = shrink(&vals, &mut |candidate: &V| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(candidate))).is_err()
            });
            std::panic::set_hook(hook);
            panic!(
                "property {test_name} failed at case {i} (seed {seed:#x}): {}\
                 \n   original input: {vals:?}\
                 \n  minimized input: {minimized:?}",
                panic_message(&panic)
            );
        }
    }
}

/// Runs `cases` seeded cases of one property, with no shrinking (legacy
/// entry point; [`proptest!`] now emits [`run_cases_shrink`]).
pub fn run_cases(test_name: &str, cases: u32, mut case: impl FnMut(&mut TestRng)) {
    for i in 0..cases {
        // Per-case seeds are fixed and name-independent so a failure
        // reported as "case i" reproduces by running the same binary again.
        let seed = 0x5eed_0000_0000_0000u64 ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(panic) = result {
            panic!(
                "property {test_name} failed at case {i} (seed {seed:#x}): {}",
                panic_message(&panic)
            );
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] many seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // One tuple strategy for the whole input: the tuple impl
                // draws components in declaration order, so the RNG
                // sequence (and thus every historical failure seed) is
                // unchanged from the old per-component expansion.
                let __padc_strategy = ($($strategy,)+);
                $crate::run_cases_shrink(
                    stringify!($name),
                    config.cases,
                    |rng| $crate::Strategy::gen_value(&__padc_strategy, rng),
                    |__padc_vals| {
                        let ($($arg,)+) = ::std::clone::Clone::clone(__padc_vals);
                        $body
                    },
                    |__padc_vals, __padc_fails| {
                        #[allow(unused_imports)]
                        use $crate::{ShrinkFallback as _, ShrinkSpecialized as _};
                        (&$crate::ShrinkDispatch(__padc_vals)).padc_shrink(
                            &mut |__padc_candidate| {
                                $crate::Strategy::is_valid(&__padc_strategy, __padc_candidate)
                                    && __padc_fails(__padc_candidate)
                            },
                        )
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_and_map_compose() {
        let strategy = prop_oneof![(0u64..10).prop_map(|v| v * 2), Just(1000u64),];
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(9);
        let mut saw_even = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match strategy.gen_value(&mut rng) {
                1000 => saw_just = true,
                v if v < 20 && v % 2 == 0 => saw_even = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(saw_even && saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases(x in 0u64..100, v in prop::collection::vec(0u32..10, 1..5)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|e| *e < 10));
        }
    }

    /// An opaque type with no `ShrinkValue` impl: the dispatch must fall
    /// through to the pass-through arm and still compile.
    #[derive(Clone, Debug, PartialEq)]
    struct Opaque(u64);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Unshrinkable input types still go through the macro.
        #[test]
        fn macro_accepts_unshrinkable_inputs(op in (0u64..10).prop_map(Opaque)) {
            prop_assert!(op.0 < 10);
        }
    }

    #[test]
    fn shrink_scalar_finds_the_boundary() {
        // Fails for x >= 1000: the minimal failing value is exactly 1000.
        let mut fails = |x: &u64| *x >= 1000;
        assert_eq!(crate::shrink_scalar(&987_654u64, &mut fails), 1000);
        // Fails everywhere: minimizes straight to the origin.
        assert_eq!(crate::shrink_scalar(&987_654u64, &mut |_| true), 0);
        // Signed values shrink toward zero from below.
        assert_eq!(crate::shrink_scalar(&-500i64, &mut |x| *x <= -20), -20);
    }

    #[test]
    fn shrink_vec_minimizes_length() {
        let v: Vec<u32> = (0..100).collect();
        // Fails whenever at least 7 elements are present: minimal failing
        // prefix has length 7.
        let out = crate::shrink_scalar(&v, &mut |v: &Vec<u32>| v.len() >= 7);
        assert_eq!(out, (0..7).collect::<Vec<u32>>());
    }

    #[test]
    fn shrink_tuple_minimizes_componentwise() {
        use crate::ShrinkTuple;
        // Fails iff a >= 10 (b is irrelevant); b shrinks to its origin.
        let minimized = (57u64, 99i32).shrink_with(&mut |t: &(u64, i32)| t.0 >= 10);
        assert_eq!(minimized, (10, 0));
    }

    #[test]
    #[allow(clippy::needless_borrow)] // the extra `&` selects the fallback impl for Opaque
    fn shrink_dispatch_prefers_real_shrinking() {
        use crate::{ShrinkDispatch, ShrinkFallback as _, ShrinkSpecialized as _};
        let vals = (64u64,);
        let out = (&ShrinkDispatch(&vals)).padc_shrink(&mut |t: &(u64,)| t.0 >= 3);
        assert_eq!(out, (3,));
        let opaque = (Opaque(7),);
        let out = (&ShrinkDispatch(&opaque)).padc_shrink(&mut |_| true);
        assert_eq!(out, opaque);
    }

    #[test]
    fn is_valid_tracks_each_strategy_shape() {
        use crate::Strategy;
        assert!((500u64..1000).is_valid(&500));
        assert!(!(500u64..1000).is_valid(&499));
        assert!(!(500u64..1000).is_valid(&1000));
        assert!((0.5f64..2.0).is_valid(&1.0));
        assert!(!(0.5f64..2.0).is_valid(&0.0));
        // Tuples check elementwise.
        assert!((3u32..8, 10i64..20).is_valid(&(3, 19)));
        assert!(!(3u32..8, 10i64..20).is_valid(&(3, 9)));
        // Vecs check both the length bound and every element.
        let v = prop::collection::vec(5u32..10, 3..6);
        assert!(v.is_valid(&vec![5, 9, 7]));
        assert!(!v.is_valid(&vec![5, 9])); // too short
        assert!(!v.is_valid(&vec![5, 9, 4])); // element out of range

        // OneOf accepts a value any arm accepts; boxing preserves the check.
        let choice = prop_oneof![0u64..5, 100u64..200];
        assert!(choice.is_valid(&3));
        assert!(choice.is_valid(&150));
        assert!(!choice.is_valid(&50));
        // Mapped strategies cannot invert `f`: they accept everything.
        assert!((500u64..1000).prop_map(|v| v * 2).is_valid(&1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// End to end through the macro: candidates outside the strategy
        /// are rejected during shrinking, so inputs stay in range even
        /// while the minimizer probes toward the origin.
        #[test]
        fn macro_shrinking_stays_in_range(x in 500u64..1000) {
            prop_assert!((500..1000).contains(&x));
        }
    }

    #[test]
    fn shrinking_respects_strategy_bounds() {
        // The property fails for every in-range input, so the smallest
        // *valid* failing input is the range's start — not the origin 0,
        // which value-based shrinking alone would report.
        let strategy = (500u64..1000,);
        let result = std::panic::catch_unwind(|| {
            crate::run_cases_shrink(
                "bounded",
                4,
                |rng| crate::Strategy::gen_value(&strategy, rng),
                |&(x,)| assert!(x < 100, "too big: {x}"),
                |vals, fails| {
                    use crate::ShrinkSpecialized as _;
                    #[allow(clippy::needless_borrow)] // mirrors the macro's autoref dispatch
                    (&crate::ShrinkDispatch(vals)).padc_shrink(&mut |candidate| {
                        crate::Strategy::is_valid(&strategy, candidate) && fails(candidate)
                    })
                },
            );
        });
        let panic = result.expect_err("property must fail");
        let msg = panic
            .downcast_ref::<String>()
            .expect("formatted panic message");
        assert!(
            msg.contains("minimized input: (500,)"),
            "expected range start 500 as the minimized input, got: {msg}"
        );
    }

    #[test]
    fn failing_property_reports_minimized_input() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases_shrink(
                "demo",
                4,
                |rng| (rand::Rng::gen_range(rng, 500u64..1000),),
                |&(x,)| assert!(x < 100, "too big: {x}"),
                |vals, fails| {
                    use crate::ShrinkSpecialized as _;
                    #[allow(clippy::needless_borrow)] // mirrors the macro's autoref dispatch
                    (&crate::ShrinkDispatch(vals)).padc_shrink(fails)
                },
            );
        });
        let panic = result.expect_err("property must fail");
        let msg = panic
            .downcast_ref::<String>()
            .expect("formatted panic message");
        assert!(msg.contains("original input:"), "missing original: {msg}");
        assert!(
            msg.contains("minimized input: (100,)"),
            "expected minimal failing input 100, got: {msg}"
        );
    }
}
